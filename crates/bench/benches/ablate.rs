//! Ablation benches for the design choices DESIGN.md calls out:
//! K-means band count and the global phase's repair budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_qos::QosModel;
use qasom_selection::workload::{Tightness, WorkloadSpec};
use qasom_selection::{LocalRank, Qassa, QassaConfig};

fn kmeans_band_count(c: &mut Criterion) {
    let model = QosModel::standard();
    let w = WorkloadSpec::evaluation_default().build(&model, 42);
    let problem = w.problem();
    let mut group = c.benchmark_group("ablate_kmeans_k");
    group.sample_size(20);
    for k in [2usize, 4, 8] {
        let config = QassaConfig {
            local: LocalRank {
                bands: k,
                kmeans_iters: 50,
            },
            ..QassaConfig::default()
        };
        let qassa = Qassa::with_config(&model, config);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| qassa.select(&problem).expect("well-formed"));
        });
    }
    group.finish();
}

fn repair_budget(c: &mut Criterion) {
    let model = QosModel::standard();
    let w = WorkloadSpec::evaluation_default()
        .tightness(Tightness::AtMean)
        .build(&model, 42);
    let problem = w.problem();
    let mut group = c.benchmark_group("ablate_repair_budget");
    group.sample_size(20);
    for budget in [0usize, 16, 64] {
        let config = QassaConfig {
            max_repairs_per_level: budget,
            ..QassaConfig::default()
        };
        let qassa = Qassa::with_config(&model, config);
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            b.iter(|| qassa.select(&problem).expect("well-formed"));
        });
    }
    group.finish();
}

criterion_group!(benches, kmeans_band_count, repair_budget);
criterion_main!(benches);
