//! Experiment harness regenerating every figure of the QASOM evaluation
//! (thesis Ch. VI §3 and Ch. V §7).
//!
//! Each `fig_*` function reproduces one figure as a set of labelled
//! [`Series`]; the `repro` binary prints them as tables, and the Criterion
//! benches under `benches/` time the same code paths. The numbers are
//! produced on *this* machine against the simulated substrate, so
//! absolute values differ from the original testbed — the shapes (slopes,
//! orderings, crossovers) are what reproduction means here; see
//! `EXPERIMENTS.md` for the side-by-side reading.

#![forbid(unsafe_code)]

use std::time::Instant;

use qasom_adaptation::BehaviouralAdapter;
use qasom_netsim::{DeviceProfile, LinkConfig};
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_selection::baseline::Baselines;
use qasom_selection::distributed::{DistributedQassa, DistributedSetup, RetryPolicy};
use qasom_selection::workload::{TaskShape, Tightness, Workload, WorkloadSpec};
use qasom_selection::{AggregationApproach, LocalRank, Qassa, QassaConfig};
use qasom_task::{bpel, Activity, BehaviouralGraph, TaskNode, UserTask};

/// One labelled series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }
}

/// Prints a figure as an aligned table (x column + one column per series).
pub fn print_figure(title: &str, x_name: &str, series: &[Series]) {
    println!("\n== {title} ==");
    print!("{x_name:>12}");
    for s in series {
        print!("  {:>18}", s.label);
    }
    println!();
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|&(x, _)| x))
            .unwrap_or(f64::NAN);
        print!("{x:>12.2}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => print!("  {y:>18.4}"),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Times `f` (milliseconds), median of `repeats` runs after one warm-up.
pub fn time_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1_000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `f` over `repeats` runs after one warm-up and returns the
/// `(p50, p99)` sample percentiles in milliseconds (nearest rank; at
/// small sample counts p99 is effectively the maximum).
pub fn percentile_ms(repeats: usize, mut f: impl FnMut()) -> (f64, f64) {
    f(); // warm-up
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1_000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let rank = |q: f64| {
        let idx = ((samples.len() as f64) * q).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    (rank(0.50), rank(0.99))
}

fn qassa_time_ms(model: &QosModel, w: &Workload, repeats: usize) -> f64 {
    let problem = w.problem();
    let qassa = Qassa::new(model);
    time_ms(repeats, || {
        let _ = qassa.select(&problem).expect("well-formed problem");
    })
}

/// Mean QASSA/exhaustive utility ratio over `seeds` feasible instances
/// (infeasible-for-both instances are skipped; QASSA missing a feasible
/// solution scores 0, so misses show up as optimality loss).
fn optimality(model: &QosModel, spec: &WorkloadSpec, seeds: u64) -> f64 {
    let baselines = Baselines::new(model).with_max_combinations(20_000_000);
    let qassa = Qassa::new(model);
    let mut total = 0.0;
    let mut counted = 0usize;
    for seed in 0..seeds {
        let w = spec.build(model, seed);
        let problem = w.problem();
        let exact = baselines.exhaustive(&problem).expect("within cap");
        if !exact.feasible || exact.utility <= 0.0 {
            continue;
        }
        let ours = qassa.select(&problem).expect("well-formed");
        let ratio = if ours.feasible {
            (ours.utility / exact.utility).min(1.0)
        } else {
            0.0
        };
        total += ratio;
        counted += 1;
    }
    if counted == 0 {
        f64::NAN
    } else {
        total / counted as f64
    }
}

/// Fig. VI.5a — QASSA execution time vs. services per activity
/// (5 activities, 4 global constraints).
pub fn fig_vi5a(model: &QosModel) -> Vec<Series> {
    let mut qassa = Series::new("QASSA [ms]");
    let mut greedy = Series::new("greedy [ms]");
    for n in [10, 50, 100, 150, 200, 250, 300] {
        let w = WorkloadSpec::evaluation_default()
            .services_per_activity(n)
            .build(model, 42);
        qassa.points.push((n as f64, qassa_time_ms(model, &w, 5)));
        let b = Baselines::new(model);
        let problem = w.problem();
        greedy.points.push((
            n as f64,
            time_ms(5, || {
                let _ = b.greedy(&problem).expect("well-formed");
            }),
        ));
    }
    vec![qassa, greedy]
}

/// Fig. VI.5b — QASSA execution time vs. number of global QoS constraints
/// (100 services per activity).
pub fn fig_vi5b(model: &QosModel) -> Vec<Series> {
    let mut s = Series::new("QASSA [ms]");
    for k in 1..=8 {
        let w = WorkloadSpec::evaluation_default()
            .property_count(k)
            .build(model, 42);
        s.points.push((k as f64, qassa_time_ms(model, &w, 5)));
    }
    vec![s]
}

/// Fig. VI.6a — optimality vs. services per activity (4 activities so the
/// exhaustive optimum stays tractable).
pub fn fig_vi6a(model: &QosModel) -> Vec<Series> {
    let mut s = Series::new("optimality");
    for n in [4, 6, 8, 10, 12, 15] {
        let spec = WorkloadSpec::evaluation_default()
            .activities(4)
            .services_per_activity(n);
        s.points.push((n as f64, optimality(model, &spec, 8)));
    }
    vec![s]
}

/// Fig. VI.6b — optimality vs. number of constraints (4 activities × 10
/// services).
pub fn fig_vi6b(model: &QosModel) -> Vec<Series> {
    let mut s = Series::new("optimality");
    for k in 1..=6 {
        let spec = WorkloadSpec::evaluation_default()
            .activities(4)
            .services_per_activity(10)
            .property_count(k);
        s.points.push((k as f64, optimality(model, &spec, 8)));
    }
    vec![s]
}

fn approaches() -> [(AggregationApproach, &'static str); 3] {
    [
        (AggregationApproach::Pessimistic, "pessimistic"),
        (AggregationApproach::Optimistic, "optimistic"),
        (AggregationApproach::MeanValue, "mean-value"),
    ]
}

/// Fig. VI.7 — execution time under the three aggregation approaches
/// (choice- and loop-bearing tasks).
pub fn fig_vi7(model: &QosModel) -> Vec<Series> {
    approaches()
        .into_iter()
        .map(|(approach, label)| {
            let mut s = Series::new(format!("{label} [ms]"));
            for n in [10, 50, 100, 200, 300] {
                let w = WorkloadSpec::evaluation_default()
                    .shape(TaskShape::Full)
                    .approach(approach)
                    .services_per_activity(n)
                    .build(model, 42);
                s.points.push((n as f64, qassa_time_ms(model, &w, 5)));
            }
            s
        })
        .collect()
}

/// Fig. VI.8 — optimality under the three aggregation approaches.
pub fn fig_vi8(model: &QosModel) -> Vec<Series> {
    approaches()
        .into_iter()
        .map(|(approach, label)| {
            let mut s = Series::new(label);
            for n in [4, 8, 12] {
                let spec = WorkloadSpec::evaluation_default()
                    .activities(4)
                    .shape(TaskShape::Full)
                    .approach(approach)
                    .services_per_activity(n);
                s.points.push((n as f64, optimality(model, &spec, 6)));
            }
            s
        })
        .collect()
}

/// Fig. VI.9 — sanity of the normally distributed QoS workload: per
/// property, the sample mean and standard deviation of the generated
/// values (compare against the configured `N(m, σ)`).
pub fn fig_vi9(model: &QosModel) -> Vec<Series> {
    let w = WorkloadSpec::evaluation_default()
        .activities(1)
        .services_per_activity(5_000)
        .build(model, 42);
    let mut mean_s = Series::new("sample mean");
    let mut std_s = Series::new("sample std dev");
    let props: Vec<_> = w.problem().properties();
    for (i, &p) in props.iter().enumerate() {
        let values: Vec<f64> = w.candidates()[0]
            .iter()
            .filter_map(|c| c.qos().get(p))
            .collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        mean_s.points.push((i as f64, mean));
        std_s.points.push((i as f64, var.sqrt()));
        println!(
            "  property {:<16} mean {:>10.3}  std {:>8.3}",
            model.def(p).name(),
            mean,
            var.sqrt()
        );
    }
    vec![mean_s, std_s]
}

/// Fig. VI.10 — execution time with global constraints fixed at `m`
/// (tight) vs. one σ looser.
pub fn fig_vi10(model: &QosModel) -> Vec<Series> {
    [
        (Tightness::AtMean, "bound at m [ms]"),
        (Tightness::AtMeanPlusSigma, "bound at m+σ [ms]"),
    ]
    .into_iter()
    .map(|(tightness, label)| {
        let mut s = Series::new(label);
        for n in [10, 50, 100, 200, 300] {
            let w = WorkloadSpec::evaluation_default()
                .tightness(tightness)
                .services_per_activity(n)
                .build(model, 42);
            s.points.push((n as f64, qassa_time_ms(model, &w, 5)));
        }
        s
    })
    .collect()
}

/// Fig. VI.11 — optimality with constraints at `m` vs. `m+σ`.
pub fn fig_vi11(model: &QosModel) -> Vec<Series> {
    [
        (Tightness::AtMean, "bound at m"),
        (Tightness::AtMeanPlusSigma, "bound at m+σ"),
    ]
    .into_iter()
    .map(|(tightness, label)| {
        let mut s = Series::new(label);
        for n in [4, 8, 12] {
            let spec = WorkloadSpec::evaluation_default()
                .activities(4)
                .tightness(tightness)
                .services_per_activity(n);
            s.points.push((n as f64, optimality(model, &spec, 6)));
        }
        s
    })
    .collect()
}

/// Fig. VI.12 — distributed QASSA: simulated local- and global-selection
/// time vs. number of provider nodes.
pub fn fig_vi12(model: &QosModel) -> Vec<Series> {
    let w = WorkloadSpec::evaluation_default().build(model, 42);
    let mut local = Series::new("local phase [ms]");
    let mut global = Series::new("global phase [ms]");
    let driver = DistributedQassa::new(model);
    for providers in [2usize, 5, 10, 20, 50] {
        let setup = DistributedSetup {
            providers,
            link: LinkConfig::new(5.0, 1.0),
            provider_profile: DeviceProfile::constrained(),
            coordinator_profile: DeviceProfile::constrained(),
            per_candidate_cost_us: 10,
            reply_timeout_ms: 5_000,
            ..DistributedSetup::default()
        };
        let report = driver.run(&w, &setup, 42).expect("protocol completes");
        local
            .points
            .push((providers as f64, report.local_phase.as_millis_f64()));
        global
            .points
            .push((providers as f64, report.global_phase.as_millis_f64()));
    }
    vec![local, global]
}

/// Generates an abstract-BPEL document with `n` activities and a mixed
/// structure (sequence / flow / if / while), as Fig. VI.13's inputs.
pub fn synthetic_bpel(n: usize) -> String {
    let mut body = String::new();
    let mut i = 0;
    let invoke = |i: usize| {
        format!(
            "<invoke name=\"a{i}\" function=\"wl#F{}\" inputs=\"wl#In\" outputs=\"wl#Out\"/>",
            i % 7
        )
    };
    while i < n {
        match i % 8 {
            0..=2 => {
                body.push_str(&invoke(i));
                i += 1;
            }
            3 => {
                let take = (n - i).clamp(1, 3);
                body.push_str("<flow>");
                for _ in 0..take {
                    body.push_str(&invoke(i));
                    i += 1;
                }
                body.push_str("</flow>");
            }
            4 => {
                let take = (n - i).clamp(1, 2);
                body.push_str("<if>");
                for b in 0..take {
                    body.push_str(&format!("<branch probability=\"{}\">", 1.0 / take as f64));
                    body.push_str(&invoke(i));
                    i += 1;
                    body.push_str("</branch>");
                    let _ = b;
                }
                body.push_str("</if>");
            }
            _ => {
                body.push_str("<while expected=\"2\" max=\"4\">");
                body.push_str(&invoke(i));
                i += 1;
                body.push_str("</while>");
            }
        }
    }
    format!("<process name=\"synthetic\"><sequence>{body}</sequence></process>")
}

/// Fig. VI.13 — time to transform abstract-BPEL specifications into
/// behavioural graphs (parse + graph construction).
pub fn fig_vi13() -> Vec<Series> {
    let mut s = Series::new("transform [ms]");
    for n in [5, 10, 20, 40, 60, 80, 100] {
        let doc = synthetic_bpel(n);
        let ms = time_ms(20, || {
            let task = bpel::parse(&doc).expect("generated BPEL is valid");
            let _ = BehaviouralGraph::from_task(&task);
        });
        s.points.push((n as f64, ms));
    }
    vec![s]
}

/// Builds the pair (current behaviour, reordered alternative) used by the
/// behavioural-adaptation benchmark: `n` sequential activities, the
/// alternative swapping the tail order.
pub fn adaptation_pair(n: usize) -> (UserTask, UserTask) {
    let act = |i: usize, prefix: &str| {
        TaskNode::activity(Activity::new(
            format!("{prefix}{i}"),
            format!("ad#F{i}").as_str(),
        ))
    };
    let current =
        UserTask::new("current", TaskNode::sequence((0..n).map(|i| act(i, "c")))).expect("valid");
    // Alternative: same functions; the unexecuted tail is wrapped in a
    // parallel block (a different behaviour realising the same class).
    let half = n / 2;
    let mut nodes: Vec<TaskNode> = (0..half).map(|i| act(i, "a")).collect();
    if half < n {
        nodes.push(TaskNode::parallel((half..n).map(|i| act(i, "a"))));
    }
    let alternative = UserTask::new("alternative", TaskNode::sequence(nodes)).expect("valid");
    (current, alternative)
}

/// Ch. V evaluation — behavioural-adaptation (subgraph homeomorphism)
/// time vs. task size; the executed prefix is the first half.
pub fn fig_v_adapt() -> Vec<Series> {
    let mut onto = OntologyBuilder::new("ad");
    for i in 0..64 {
        onto.concept(&format!("F{i}"));
    }
    let onto = onto.build().expect("valid ontology");
    let adapter = BehaviouralAdapter::new(&onto);

    let mut s = Series::new("resume mapping [ms]");
    for n in [4usize, 8, 12, 16, 20, 24] {
        let (current, alternative) = adaptation_pair(n);
        let executed: Vec<String> = (0..n / 2).map(|i| format!("c{i}")).collect();
        let executed_refs: Vec<&str> = executed.iter().map(String::as_str).collect();
        let ms = time_ms(10, || {
            let m = adapter.resume_mapping(&current, &alternative, &executed_refs);
            assert!(m.is_some(), "mapping must exist for n={n}");
        });
        s.points.push((n as f64, ms));
    }
    vec![s]
}

/// Ablation — K-means band count `k`: selection time and optimality.
pub fn ablate_kmeans_k(model: &QosModel) -> Vec<Series> {
    let mut time_series = Series::new("time [ms]");
    let mut opt_series = Series::new("optimality");
    for k in [2usize, 3, 4, 6, 8] {
        let config = QassaConfig {
            local: LocalRank {
                bands: k,
                kmeans_iters: 50,
            },
            ..QassaConfig::default()
        };
        let w = WorkloadSpec::evaluation_default().build(model, 42);
        let problem = w.problem();
        let qassa = Qassa::with_config(model, config);
        time_series.points.push((
            k as f64,
            time_ms(5, || {
                let _ = qassa.select(&problem).expect("well-formed");
            }),
        ));

        // Optimality at exhaustive-tractable size.
        let baselines = Baselines::new(model);
        let mut total = 0.0;
        let mut counted = 0;
        for seed in 0..6 {
            let w = WorkloadSpec::evaluation_default()
                .activities(4)
                .services_per_activity(10)
                .build(model, seed);
            let p = w.problem();
            let exact = baselines.exhaustive(&p).expect("within cap");
            if exact.feasible && exact.utility > 0.0 {
                let ours = Qassa::with_config(model, config).select(&p).expect("ok");
                total += if ours.feasible {
                    (ours.utility / exact.utility).min(1.0)
                } else {
                    0.0
                };
                counted += 1;
            }
        }
        opt_series
            .points
            .push((k as f64, total / counted.max(1) as f64));
    }
    vec![time_series, opt_series]
}

/// Ablation — repair budget of the global phase: 0 (pure level descent)
/// vs. the default utility-aware repair.
pub fn ablate_global_strategy(model: &QosModel) -> Vec<Series> {
    [(0usize, "no repairs"), (64, "repairs (default)")]
        .into_iter()
        .map(|(budget, label)| {
            let config = QassaConfig {
                max_repairs_per_level: budget,
                ..QassaConfig::default()
            };
            let mut s = Series::new(format!("{label}: feasible rate"));
            for n in [10usize, 50, 100] {
                let mut feasible = 0;
                const SEEDS: u64 = 10;
                for seed in 0..SEEDS {
                    let w = WorkloadSpec::evaluation_default()
                        .services_per_activity(n)
                        .tightness(Tightness::AtMean)
                        .build(model, seed);
                    let out = Qassa::with_config(model, config)
                        .select(&w.problem())
                        .expect("well-formed");
                    if out.feasible {
                        feasible += 1;
                    }
                }
                s.points.push((n as f64, feasible as f64 / SEEDS as f64));
            }
            s
        })
        .collect()
}

/// Extra distributed figure: fault tolerance of the protocol under
/// message loss — mean candidate coverage and mean total latency vs.
/// link loss probability, with retransmissions enabled (default capped
/// exponential backoff) against retransmissions disabled, averaged over
/// 10 seeds per point.
pub fn fig_loss(model: &QosModel) -> Vec<Series> {
    let w = WorkloadSpec::evaluation_default()
        .activities(3)
        .services_per_activity(30)
        .build(model, 42);
    let driver = DistributedQassa::new(model);
    const SEEDS: u64 = 10;
    let variants = [
        ("retries", RetryPolicy::default()),
        ("no retries", RetryPolicy::disabled()),
    ];
    let mut out = Vec::new();
    for (label, retry) in variants {
        let mut coverage = Series::new(format!("coverage ({label})"));
        let mut total = Series::new(format!("total [ms] ({label})"));
        for loss in [0.0f64, 0.1, 0.2, 0.3, 0.4, 0.6] {
            let setup = DistributedSetup {
                providers: 8,
                link: LinkConfig::new(5.0, 1.0).with_loss(loss),
                provider_profile: DeviceProfile::constrained(),
                coordinator_profile: DeviceProfile::constrained(),
                per_candidate_cost_us: 10,
                reply_timeout_ms: 5_000,
                retry,
                ..DistributedSetup::default()
            };
            let (mut cov_sum, mut ms_sum) = (0.0, 0.0);
            for seed in 0..SEEDS {
                match driver.run(&w, &setup, seed) {
                    Ok(report) => {
                        cov_sum += report.fault.coverage_ratio();
                        ms_sum += report.total().as_millis_f64();
                    }
                    // An activity lost every candidate: zero coverage,
                    // and the run still paid the full deadline.
                    Err(_) => ms_sum += setup.reply_timeout_ms as f64,
                }
            }
            coverage.points.push((loss, cov_sum / SEEDS as f64));
            total.points.push((loss, ms_sum / SEEDS as f64));
        }
        out.push(coverage);
        out.push(total);
    }
    out
}

/// Extra axis: QASSA execution time vs. number of abstract activities
/// (100 services each, 4 constraints).
pub fn fig_activities(model: &QosModel) -> Vec<Series> {
    let mut s = Series::new("QASSA [ms]");
    for n in [2usize, 5, 10, 15, 20] {
        let w = WorkloadSpec::evaluation_default()
            .activities(n)
            .build(model, 42);
        s.points.push((n as f64, qassa_time_ms(model, &w, 5)));
    }
    vec![s]
}

/// Scalability beyond the paper's axis: QASSA at very large candidate
/// pools, with the serial and the multi-core (parallel local phase)
/// variants — the timeliness claim stretched an order of magnitude.
pub fn scalability(model: &QosModel) -> Vec<Series> {
    let mut serial = Series::new("serial [ms]");
    let mut parallel = Series::new("parallel local [ms]");
    for n in [300usize, 600, 1000, 2000] {
        let w = WorkloadSpec::evaluation_default()
            .activities(10)
            .services_per_activity(n)
            .build(model, 42);
        let problem = w.problem();
        let qassa = Qassa::new(model);
        serial.points.push((
            n as f64,
            time_ms(3, || {
                let _ = qassa.select(&problem).expect("well-formed");
            }),
        ));
        parallel.points.push((
            n as f64,
            time_ms(3, || {
                let _ = qassa.select_parallel(&problem).expect("well-formed");
            }),
        ));
    }
    vec![serial, parallel]
}

/// Head-to-head selector comparison on the default workload
/// (5 activities × 100 services × 4 constraints, 10 seeds): median time,
/// mean utility and feasible rate for QASSA, greedy, the genetic
/// baseline and random. Prints its own table.
pub fn compare_selectors(model: &QosModel) {
    const SEEDS: u64 = 10;
    for (scenario, spec) in [
        (
            "abundant (100 services/activity, bounds at m)",
            WorkloadSpec::evaluation_default().tightness(Tightness::AtMean),
        ),
        (
            "scarce (8 services/activity, bounds tighter than m)",
            WorkloadSpec::evaluation_default()
                .services_per_activity(8)
                .tightness(Tightness::LooserBySigmas(-0.25)),
        ),
    ] {
        println!("\n-- {scenario} --");
        compare_selectors_on(model, &spec, SEEDS);
    }
}

fn compare_selectors_on(model: &QosModel, spec: &WorkloadSpec, seeds: u64) {
    use qasom_selection::baseline::GeneticConfig;

    println!(
        "{:>12}  {:>12}  {:>12}  {:>14}",
        "selector", "time [ms]", "utility", "feasible rate"
    );
    type Runner<'m> = Box<dyn Fn(&crate::Workload) -> qasom_selection::SelectionOutcome + 'm>;
    let baselines = Baselines::new(model);
    let selectors: Vec<(&str, Runner)> = vec![
        (
            "QASSA",
            Box::new(move |w: &Workload| {
                Qassa::new(model).select(&w.problem()).expect("well-formed")
            }),
        ),
        (
            "greedy",
            Box::new(move |w: &Workload| baselines.greedy(&w.problem()).expect("well-formed")),
        ),
        (
            "decomposed",
            Box::new(move |w: &Workload| baselines.decomposed(&w.problem()).expect("well-formed")),
        ),
        (
            "genetic",
            Box::new(move |w: &Workload| {
                baselines
                    .genetic(&w.problem(), &GeneticConfig::default())
                    .expect("well-formed")
            }),
        ),
        (
            "random",
            Box::new(move |w: &Workload| baselines.random(&w.problem(), 1).expect("well-formed")),
        ),
    ];
    for (name, run) in &selectors {
        let mut utilities = 0.0;
        let mut feasible = 0usize;
        for seed in 0..seeds {
            let w = spec.build(model, seed);
            let out = run(&w);
            utilities += out.utility;
            feasible += usize::from(out.feasible);
        }
        let w = spec.build(model, 0);
        let t = time_ms(3, || {
            let _ = run(&w);
        });
        println!(
            "{:>12}  {:>12.3}  {:>12.4}  {:>14.2}",
            name,
            t,
            utilities / seeds as f64,
            feasible as f64 / seeds as f64
        );
    }
}

/// Ablation — proactive (EWMA+trend) vs reactive violation detection:
/// for a service whose response time ramps up linearly, how many
/// invocations earlier does the proactive monitor flag the (future)
/// violation? Larger lead = more time to substitute before the user
/// feels it.
pub fn ablate_monitoring(model: &QosModel) -> Vec<Series> {
    use qasom_adaptation::{MonitorConfig, QosMonitor};
    use qasom_registry::{ServiceDescription, ServiceRegistry};

    let rt = model.property("ResponseTime").expect("standard model");
    let bound = 200.0;
    let mut lead_series = Series::new("proactive lead [invocations]");
    for slope in [2.0f64, 5.0, 10.0, 20.0] {
        let mut reg = ServiceRegistry::new();
        let id = reg.register(ServiceDescription::new("s", "d#F"));
        let mut monitor = QosMonitor::with_config(MonitorConfig {
            window: 10,
            ewma_alpha: 0.3,
        });
        let mut reactive_at: Option<usize> = None;
        let mut proactive_at: Option<usize> = None;
        for step in 0..400usize {
            let value = 100.0 + slope * step as f64;
            let mut q = qasom_qos::QosVector::new();
            q.set(rt, value);
            monitor.observe(id, &q);
            let estimate = monitor.estimate(id).unwrap().get(rt).unwrap();
            let predicted = monitor.predict(id).unwrap().get(rt).unwrap();
            if proactive_at.is_none() && predicted > bound {
                proactive_at = Some(step);
            }
            if reactive_at.is_none() && estimate > bound {
                reactive_at = Some(step);
                break;
            }
        }
        let lead = match (reactive_at, proactive_at) {
            (Some(r), Some(p)) => (r as f64) - (p as f64),
            _ => f64::NAN,
        };
        lead_series.points.push((slope, lead));
    }
    vec![lead_series]
}

/// Ablation — semantic vs syntactic discovery recall: providers advertise
/// *specialised* capabilities (subconcepts of what the user asks for);
/// semantic matching finds them all, exact-syntax matching finds none.
pub fn ablate_semantics(model: &QosModel) -> Vec<Series> {
    use qasom_ontology::Ontology;
    use qasom_registry::{Discovery, DiscoveryQuery, ServiceDescription, ServiceRegistry};
    use qasom_task::Activity;

    let build = |specialised: usize, with_taxonomy: bool| -> (Ontology, ServiceRegistry) {
        let mut b = OntologyBuilder::new("shop");
        let pay = b.concept("Pay");
        if with_taxonomy {
            for i in 0..specialised {
                b.subconcept(&format!("Pay{i}"), pay);
            }
        }
        let onto = b.build().expect("valid");
        let mut reg = ServiceRegistry::new();
        for i in 0..specialised {
            reg.register(ServiceDescription::new(
                format!("till-{i}"),
                &format!("shop#Pay{i}"),
            ));
        }
        (onto, reg)
    };

    let mut semantic = Series::new("semantic recall");
    let mut syntactic = Series::new("syntactic recall");
    for n in [1usize, 5, 10, 20] {
        let activity = Activity::new("pay", "shop#Pay");
        let (onto, reg) = build(n, true);
        let found = Discovery::new(&onto, model)
            .discover(&reg, &DiscoveryQuery::new(&activity))
            .len();
        semantic.points.push((n as f64, found as f64 / n as f64));

        let (onto, reg) = build(n, false);
        let found = Discovery::new(&onto, model)
            .discover(&reg, &DiscoveryQuery::new(&activity))
            .len();
        syntactic.points.push((n as f64, found as f64 / n as f64));
    }
    vec![semantic, syntactic]
}

/// Builds the serving-throughput market: three concepts, `per_concept`
/// providers each, a three-activity sequence task touching all of them.
fn serving_market(per_concept: usize) -> Option<(qasom::SharedEnvironment, qasom::UserRequest)> {
    use qasom_registry::ServiceDescription;

    let concepts = ["A", "B", "C"];
    let mut b = OntologyBuilder::new("d");
    for c in concepts {
        b.concept(c);
    }
    let ontology = b.build().ok()?;
    let mut env = qasom::Environment::new(QosModel::standard(), ontology, 17);
    let rt = env.model().property("ResponseTime")?;
    for (ci, c) in concepts.iter().enumerate() {
        for i in 0..per_concept {
            let desc = ServiceDescription::new(format!("{c}{i}"), &format!("d#{c}"))
                .with_qos(rt, 40.0 + (ci * per_concept + i) as f64);
            let nominal = desc.qos().clone();
            env.deploy(desc, qasom_netsim::runtime::SyntheticService::new(nominal));
        }
    }
    let task = UserTask::new(
        "serving",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("a", "d#A")),
            TaskNode::activity(Activity::new("b", "d#B")),
            TaskNode::activity(Activity::new("c", "d#C")),
        ]),
    )
    .ok()?;
    Some((
        qasom::SharedEnvironment::new(env),
        qasom::UserRequest::new(task).weight("Delay", 1.0),
    ))
}

/// Runs `threads × sessions_per_thread` compositions against one shared
/// environment and returns `(sessions/sec, ms/session)`. `serial` routes
/// every compose through the write lock (the pre-split discipline);
/// otherwise composes share the read lock and overlap.
fn serving_throughput(threads: usize, sessions_per_thread: usize, serial: bool) -> (f64, f64) {
    let Some((shared, request)) = serving_market(40) else {
        return (0.0, 0.0);
    };
    // Warm the match cache so every measured session takes the hit path.
    let warmed = shared.compose(&request).is_ok();
    assert!(warmed, "the serving market must compose");

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let shared = &shared;
            let request = &request;
            scope.spawn(move || {
                for _ in 0..sessions_per_thread {
                    let ok = if serial {
                        shared.with_mut(|e| e.compose(request).is_ok())
                    } else {
                        shared.compose(request).is_ok()
                    };
                    assert!(ok, "every session must compose");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let sessions = (threads * sessions_per_thread) as f64;
    (sessions / elapsed, elapsed * 1000.0 / sessions)
}

/// Serving throughput at 1/2/4/8 session threads: the full composition
/// pipeline (discovery + QASSA selection) per session, serial-lock
/// (every compose exclusive, the discipline before the read/write
/// split) vs read-concurrent (composes share the read lock). Single
/// shared environment, 3 activities × 40 providers. On a multi-core
/// host the read-concurrent sessions/s curve scales with threads while
/// serial-lock stays flat; single-threaded the two must coincide (the
/// split costs nothing when uncontended).
pub fn fig_serving() -> Vec<Series> {
    let mut serial = Series::new("serial-lock sessions/s");
    let mut concurrent = Series::new("read-concurrent sessions/s");
    let mut serial_latency = Series::new("serial-lock ms/session");
    let mut concurrent_latency = Series::new("read-concurrent ms/session");
    for threads in [1usize, 2, 4, 8] {
        let x = threads as f64;
        let (rate, latency) = serving_throughput(threads, 25, true);
        serial.points.push((x, rate));
        serial_latency.points.push((x, latency));
        let (rate, latency) = serving_throughput(threads, 25, false);
        concurrent.points.push((x, rate));
        concurrent_latency.points.push((x, latency));
    }
    vec![serial, concurrent, serial_latency, concurrent_latency]
}

/// Builds the hot-path market: eight concepts, `total / 8` providers
/// each with varied QoS, an eight-activity sequence task over all of
/// them, and a request that constrains and weights two properties (so
/// the flat rank columns are actually exercised).
pub fn hotpath_market(total: usize) -> Option<(qasom::Environment, qasom::UserRequest)> {
    use qasom_registry::ServiceDescription;

    const ACTIVITIES: usize = 8;
    let mut b = OntologyBuilder::new("hp");
    for i in 0..ACTIVITIES {
        b.concept(&format!("A{i}"));
    }
    let ontology = b.build().ok()?;
    let mut env = qasom::Environment::new(QosModel::standard(), ontology, 23);
    let rt = env.model().property("ResponseTime")?;
    let av = env.model().property("Availability")?;
    let per = (total / ACTIVITIES).max(1);
    for ci in 0..ACTIVITIES {
        for i in 0..per {
            let desc = ServiceDescription::new(format!("s{ci}-{i}"), &format!("hp#A{ci}"))
                .with_qos(rt, 40.0 + ((i * 7_919 + ci * 13) % 1_000) as f64)
                .with_qos(av, 0.90 + ((i * 104_729 + ci) % 100) as f64 / 1_000.0);
            let nominal = desc.qos().clone();
            env.deploy(desc, qasom_netsim::runtime::SyntheticService::new(nominal));
        }
    }
    let task = UserTask::new(
        "hotpath",
        TaskNode::sequence((0..ACTIVITIES).map(|i| {
            TaskNode::activity(Activity::new(format!("a{i}"), format!("hp#A{i}").as_str()))
        })),
    )
    .ok()?;
    let request = qasom::UserRequest::new(task)
        .constraint("ResponseTime", 10.0, qasom_qos::Unit::Seconds)
        .ok()?
        .weight("ResponseTime", 0.7)
        .weight("Availability", 0.3);
    Some((env, request))
}

/// Hot-path figure: full-pipeline compose latency (p50/p99) plus the
/// full-vs-delta re-selection split after churn touching one of the
/// eight activities, at 10k and 100k registered services. The speed-up
/// series is what the delta path buys: full recompose re-discovers and
/// re-clusters all eight activities, the delta re-ranks exactly one.
pub fn fig_hotpath() -> Vec<Series> {
    let mut compose_p50 = Series::new("compose p50 [ms]");
    let mut compose_p99 = Series::new("compose p99 [ms]");
    let mut full = Series::new("full recompose [ms]");
    let mut delta = Series::new("delta recompose [ms]");
    let mut speedup = Series::new("full/delta speed-up");
    for total in [10_000usize, 100_000] {
        let Some((mut env, request)) = hotpath_market(total) else {
            continue;
        };
        let Ok(comp) = env.compose(&request) else {
            continue;
        };
        // Churn touching exactly one activity (concept A0): every delta
        // re-selection below replays this one event and re-ranks one of
        // the eight activities.
        let Some(rt) = env.model().property("ResponseTime") else {
            continue;
        };
        let desc = qasom_registry::ServiceDescription::new("late", "hp#A0").with_qos(rt, 35.0);
        let nominal = desc.qos().clone();
        env.deploy(desc, qasom_netsim::runtime::SyntheticService::new(nominal));

        // The fallibility of compose/recompose was settled by the first
        // compose above; the timed closures discard the (identical)
        // results.
        let x = total as f64;
        let (p50, p99) = percentile_ms(9, || {
            let _ = env.compose(&request);
        });
        compose_p50.points.push((x, p50));
        compose_p99.points.push((x, p99));
        let f = time_ms(5, || {
            let _ = env.recompose_full(&comp);
        });
        let d = time_ms(5, || {
            let _ = env.recompose(&comp);
        });
        full.points.push((x, f));
        delta.points.push((x, d));
        speedup.points.push((x, f / d.max(f64::MIN_POSITIVE)));
    }
    vec![compose_p50, compose_p99, full, delta, speedup]
}

/// Persistence figure: warm-boot cost at 10k and 100k registered
/// services (DESIGN.md §14). Three ways to repopulate a registry after
/// a restart:
///
/// * **re-registration** — the no-persistence baseline: every provider
///   re-registers from scratch (what `qasomd` without `--data-dir`
///   does on every boot);
/// * **WAL replay** — recovery from an un-checkpointed write-ahead log
///   (one CRC-framed record per historical registration);
/// * **snapshot load** — recovery from a checkpointed snapshot with an
///   empty WAL (the state after a clean shutdown).
pub fn fig_persist() -> Vec<Series> {
    use qasom_registry::persist::{MemoryBackend, PersistConfig, PersistentRegistry};
    use qasom_registry::{ServiceDescription, ServiceRegistry};

    const CONCEPTS: usize = 8;
    let mut rereg = Series::new("re-registration [ms]");
    let mut replay = Series::new("WAL replay [ms]");
    let mut snapshot = Series::new("snapshot load [ms]");
    let mut b = OntologyBuilder::new("ps");
    for c in 0..CONCEPTS {
        b.concept(&format!("A{c}"));
    }
    let Ok(ontology) = b.build() else {
        return vec![rereg, replay, snapshot];
    };
    let ontology = std::sync::Arc::new(ontology);
    let model = QosModel::standard();
    let Some(rt) = model.property("ResponseTime") else {
        return vec![rereg, replay, snapshot];
    };

    for total in [10_000usize, 100_000] {
        let descriptions: Vec<ServiceDescription> = (0..total)
            .map(|i| {
                ServiceDescription::new(format!("s{i}"), format!("ps#A{}", i % CONCEPTS).as_str())
                    .with_qos(rt, 40.0 + ((i * 7_919) % 1_000) as f64)
            })
            .collect();
        let x = total as f64;

        rereg.points.push((
            x,
            time_ms(3, || {
                let mut registry = ServiceRegistry::with_ontology(std::sync::Arc::clone(&ontology));
                for desc in &descriptions {
                    registry.register(desc.clone());
                }
                std::hint::black_box(registry.len());
            }),
        ));

        let backend = MemoryBackend::new();
        let Ok((mut journaled, _)) = PersistentRegistry::open(
            backend.clone(),
            PersistConfig {
                checkpoint_every: 0,
            },
            Some(std::sync::Arc::clone(&ontology)),
        ) else {
            continue;
        };
        if descriptions
            .iter()
            .any(|desc| journaled.register(desc.clone()).is_err())
        {
            continue;
        }
        replay.points.push((
            x,
            time_ms(3, || {
                let recovered = PersistentRegistry::open(
                    backend.fork(),
                    PersistConfig::default(),
                    Some(std::sync::Arc::clone(&ontology)),
                );
                std::hint::black_box(recovered.is_ok());
            }),
        ));

        if journaled.checkpoint().is_err() {
            continue;
        }
        snapshot.points.push((
            x,
            time_ms(3, || {
                let recovered = PersistentRegistry::open(
                    backend.fork(),
                    PersistConfig::default(),
                    Some(std::sync::Arc::clone(&ontology)),
                );
                std::hint::black_box(recovered.is_ok());
            }),
        ));
    }
    vec![rereg, replay, snapshot]
}

/// Builds the daemon-throughput market (one concept, `providers`
/// candidates, recorder attached) and the shared hot request.
fn daemon_market(providers: usize) -> Option<(qasom::SharedEnvironment, qasom::UserRequest)> {
    use qasom_registry::ServiceDescription;

    let mut b = OntologyBuilder::new("d");
    b.concept("A");
    let ontology = b.build().ok()?;
    let mut env = qasom::Environment::new(QosModel::standard(), ontology, 7);
    env.set_recorder(std::sync::Arc::new(qasom_obs::MemoryRecorder::new()));
    let rt = env.model().property("ResponseTime")?;
    for i in 0..providers {
        let desc = ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + i as f64);
        let nominal = desc.qos().clone();
        env.deploy(desc, qasom_netsim::runtime::SyntheticService::new(nominal));
    }
    let task = UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).ok()?;
    Some((
        qasom::SharedEnvironment::new(env),
        qasom::UserRequest::new(task).weight("Delay", 1.0),
    ))
}

/// Drives `clients × rounds` same-signature sessions through a loopback
/// daemon at the given `batch_max` and returns
/// `(sessions completed, discovery queries)` from the recorder — both
/// deterministic.
fn daemon_run(batch_max: usize, clients: usize, rounds: usize) -> Option<(u64, u64)> {
    use qasom_daemon::{AdmissionConfig, BrokerConfig, LoopbackDaemon};

    let (shared, request) = daemon_market(40)?;
    let mut daemon = LoopbackDaemon::new(
        shared.clone(),
        BrokerConfig {
            admission: AdmissionConfig {
                queue_capacity: clients * rounds + 1,
                client_quota: rounds + 1,
                batch_max,
            },
        },
    );
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let c = daemon.connect();
            daemon.send_hello(c, &format!("c{i}")).ok()?;
            Some(c)
        })
        .collect::<Option<_>>()?;
    daemon.pump();
    let mut corr = 0u64;
    for _ in 0..rounds {
        for c in &handles {
            corr += 1;
            daemon.send_compose(*c, corr, &request).ok()?;
        }
        daemon.pump();
        for c in &handles {
            daemon.drain_events(*c).ok()?;
        }
    }
    let snap = shared.with(|e| e.recorder().and_then(|r| r.snapshot()))?;
    Some((
        snap.counter(qasom_obs::keys::DAEMON_COMPLETED),
        snap.counter(qasom_obs::keys::DISCOVERY_INDEXED)
            + snap.counter(qasom_obs::keys::DISCOVERY_LINEAR),
    ))
}

/// Daemon serving — batched admission: sessions/s and discovery queries
/// per session vs `batch_max`, 8 clients submitting the same request
/// over the loopback transport. The queries/session series is exact and
/// deterministic (1 at `batch_max ≥ clients`, approaching 1/`batch_max`
/// of the unbatched cost); the sessions/s series is machine-local.
pub fn fig_daemon() -> Vec<Series> {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;
    let mut rate = Series::new("sessions/s");
    let mut queries = Series::new("discovery queries/session");
    for batch_max in [1usize, 2, 4, 8] {
        let Some((sessions, discovery_queries)) = daemon_run(batch_max, CLIENTS, ROUNDS) else {
            continue;
        };
        queries.points.push((
            batch_max as f64,
            discovery_queries as f64 / sessions.max(1) as f64,
        ));
        let ms = time_ms(3, || {
            let _ = daemon_run(batch_max, CLIENTS, ROUNDS);
        });
        rate.points.push((
            batch_max as f64,
            sessions as f64 / (ms / 1000.0).max(f64::MIN_POSITIVE),
        ));
    }
    vec![rate, queries]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_bpel_parses_at_all_sizes() {
        for n in [1, 5, 17, 64] {
            let doc = synthetic_bpel(n);
            let task = bpel::parse(&doc).expect("valid BPEL");
            assert_eq!(task.activity_count(), n);
        }
    }

    #[test]
    fn adaptation_pair_always_admits_a_mapping() {
        let mut onto = OntologyBuilder::new("ad");
        for i in 0..32 {
            onto.concept(&format!("F{i}"));
        }
        let onto = onto.build().unwrap();
        let adapter = BehaviouralAdapter::new(&onto);
        for n in [4usize, 9, 14] {
            let (cur, alt) = adaptation_pair(n);
            let executed: Vec<String> = (0..n / 2).map(|i| format!("c{i}")).collect();
            let refs: Vec<&str> = executed.iter().map(String::as_str).collect();
            assert!(adapter.resume_mapping(&cur, &alt, &refs).is_some());
        }
    }

    #[test]
    fn time_ms_returns_positive_duration() {
        let ms = time_ms(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ms >= 0.0);
    }

    #[test]
    fn fig_serving_produces_all_series() {
        // Smoke at tiny scale: both lock disciplines produce finite,
        // positive rates at 1 and 2 threads (no timing assertion — the
        // ≥1.5× speed-up claim belongs to multi-core CI runners).
        let mut serial = Series::new("serial-lock sessions/s");
        let mut concurrent = Series::new("read-concurrent sessions/s");
        for threads in [1usize, 2] {
            let (rate, _) = serving_throughput(threads, 3, true);
            serial.points.push((threads as f64, rate));
            let (rate, _) = serving_throughput(threads, 3, false);
            concurrent.points.push((threads as f64, rate));
        }
        for series in [&serial, &concurrent] {
            for (_, rate) in &series.points {
                assert!(rate.is_finite() && *rate > 0.0);
            }
        }
    }

    #[test]
    fn daemon_batching_reduces_discovery_queries() {
        let (sessions_unbatched, queries_unbatched) =
            daemon_run(1, 4, 3).expect("loopback run completes");
        let (sessions_batched, queries_batched) =
            daemon_run(8, 4, 3).expect("loopback run completes");
        assert_eq!(sessions_unbatched, 12);
        assert_eq!(sessions_batched, 12);
        // One compose pass per batch: batching 4 clients' identical
        // requests must cut discovery traffic.
        assert!(queries_batched < queries_unbatched);
    }

    #[test]
    fn hotpath_market_composes_and_delta_matches_full() {
        // Tiny scale: the market composes, churn routes the next
        // recompose through the delta path, and the result matches the
        // full oracle.
        let (mut env, request) = hotpath_market(160).expect("market builds");
        let comp = env.compose(&request).expect("composes");
        let rt = env.model().property("ResponseTime").unwrap();
        let desc = qasom_registry::ServiceDescription::new("late", "hp#A0").with_qos(rt, 35.0);
        let nominal = desc.qos().clone();
        env.deploy(desc, qasom_netsim::runtime::SyntheticService::new(nominal));
        let delta = env.recompose(&comp).expect("delta recomposes");
        let full = env.recompose_full(&comp).expect("full recomposes");
        assert_eq!(delta.outcome().assignment, full.outcome().assignment);
        assert_eq!(delta.outcome().ranked, full.outcome().ranked);
        assert_eq!(delta.outcome().utility, full.outcome().utility);
    }

    #[test]
    fn fig_vi13_series_is_monotone_in_size() {
        // Smoke: the transformation runs at every size (no timing
        // assertion — CI machines vary).
        let series = fig_vi13();
        assert_eq!(series[0].points.len(), 7);
    }
}
