//! Regenerates every figure of the QASOM evaluation as printed tables.
//!
//! ```text
//! cargo run --release -p qasom-bench --bin repro            # everything
//! cargo run --release -p qasom-bench --bin repro -- vi5 vi12  # a subset
//! cargo run --release -p qasom-bench --bin repro -- --json BENCH.json
//! ```
//!
//! With `--json PATH` the regenerated figures are also written as a
//! [`BenchReport`] (`qasom.bench-report.v1`): the machine-readable
//! trajectory file the CI stores next to the printed tables. Timing
//! figures carry machine-local values; the *schema* and series labels
//! are stable.

use qasom_bench as bench;
use qasom_obs::report::{BenchReport, Figure, FigureSeries};
use qasom_qos::QosModel;

/// Prints a figure and collects it into the JSON report.
fn show(
    report: &mut BenchReport,
    key: &str,
    title: &str,
    x_name: &str,
    series: Vec<bench::Series>,
) {
    bench::print_figure(title, x_name, &series);
    report.figures.push(Figure {
        name: key.to_owned(),
        series: series
            .into_iter()
            .map(|s| FigureSeries {
                label: s.label,
                points: s.points,
            })
            .collect(),
    });
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut keys: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--json" {
            json_path = it.next();
            if json_path.is_none() {
                eprintln!("error: --json requires a path");
                std::process::exit(2);
            }
        } else {
            keys.push(arg);
        }
    }
    let want = |key: &str| keys.is_empty() || keys.iter().any(|a| a == key || a == "all");
    let model = QosModel::standard();
    let mut report = BenchReport::new(42);

    println!("QASOM evaluation reproduction — simulated substrate");
    println!("(shapes are comparable to the original figures; absolute values are machine-local)");

    if want("vi5") {
        show(
            &mut report,
            "vi5a",
            "Fig. VI.5a — selection time vs services/activity (5 activities, 4 constraints)",
            "services",
            bench::fig_vi5a(&model),
        );
        show(
            &mut report,
            "vi5b",
            "Fig. VI.5b — selection time vs #QoS constraints (100 services/activity)",
            "constraints",
            bench::fig_vi5b(&model),
        );
    }
    if want("vi6") {
        show(
            &mut report,
            "vi6a",
            "Fig. VI.6a — optimality vs services/activity (vs exhaustive optimum)",
            "services",
            bench::fig_vi6a(&model),
        );
        show(
            &mut report,
            "vi6b",
            "Fig. VI.6b — optimality vs #QoS constraints",
            "constraints",
            bench::fig_vi6b(&model),
        );
    }
    if want("vi7") {
        show(
            &mut report,
            "vi7",
            "Fig. VI.7 — selection time per aggregation approach (choice+loop tasks)",
            "services",
            bench::fig_vi7(&model),
        );
    }
    if want("vi8") {
        show(
            &mut report,
            "vi8",
            "Fig. VI.8 — optimality per aggregation approach",
            "services",
            bench::fig_vi8(&model),
        );
    }
    if want("vi9") {
        println!("\n== Fig. VI.9 — generated QoS follows N(m, σ) ==");
        let series = bench::fig_vi9(&model);
        report.figures.push(Figure {
            name: "vi9".to_owned(),
            series: series
                .into_iter()
                .map(|s| FigureSeries {
                    label: s.label,
                    points: s.points,
                })
                .collect(),
        });
    }
    if want("vi10") {
        show(
            &mut report,
            "vi10",
            "Fig. VI.10 — selection time with constraints at m vs m+σ",
            "services",
            bench::fig_vi10(&model),
        );
    }
    if want("vi11") {
        show(
            &mut report,
            "vi11",
            "Fig. VI.11 — optimality with constraints at m vs m+σ",
            "services",
            bench::fig_vi11(&model),
        );
    }
    if want("vi12") {
        show(
            &mut report,
            "vi12",
            "Fig. VI.12 — distributed QASSA: simulated phase times vs provider nodes",
            "providers",
            bench::fig_vi12(&model),
        );
    }
    if want("vi13") {
        show(
            &mut report,
            "vi13",
            "Fig. VI.13 — abstract BPEL → behavioural graph transformation time",
            "activities",
            bench::fig_vi13(),
        );
    }
    if want("v_adapt") {
        show(
            &mut report,
            "v_adapt",
            "Ch. V — behavioural adaptation (subgraph homeomorphism) time",
            "activities",
            bench::fig_v_adapt(),
        );
    }
    if want("loss") {
        show(
            &mut report,
            "loss",
            "Extra — fault tolerance under message loss: retries vs no retries (8 providers, 10 seeds)",
            "loss prob",
            bench::fig_loss(&model),
        );
    }
    if want("activities") {
        show(
            &mut report,
            "activities",
            "Extra — selection time vs number of activities (100 services each)",
            "activities",
            bench::fig_activities(&model),
        );
    }
    if want("serving") {
        show(
            &mut report,
            "serving",
            "Serving — concurrent sessions: serial-lock vs read-concurrent compose",
            "threads",
            bench::fig_serving(),
        );
    }
    if want("daemon") {
        show(
            &mut report,
            "daemon",
            "Daemon — batched admission: throughput and discovery cost vs batch size",
            "batch max",
            bench::fig_daemon(),
        );
    }
    if want("hotpath") {
        show(
            &mut report,
            "hotpath",
            "Hot path — compose p50/p99 and full-vs-delta re-selection (8 activities)",
            "services",
            bench::fig_hotpath(),
        );
    }
    if want("persist") {
        show(
            &mut report,
            "persist",
            "Persistence — warm boot: snapshot load / WAL replay vs re-registration",
            "services",
            bench::fig_persist(),
        );
    }
    if want("scale") {
        show(
            &mut report,
            "scale",
            "Scalability — QASSA at large pools (serial vs parallel local phase)",
            "services",
            bench::scalability(&model),
        );
    }
    if want("compare") {
        println!("\n== Selector comparison (5 activities × 100 services, 10 seeds) ==");
        bench::compare_selectors(&model);
    }
    if want("ablate") {
        show(
            &mut report,
            "ablate_kmeans_k",
            "Ablation — K-means band count k",
            "k",
            bench::ablate_kmeans_k(&model),
        );
        show(
            &mut report,
            "ablate_global",
            "Ablation — global phase repair budget (feasible-rate, tight constraints)",
            "services",
            bench::ablate_global_strategy(&model),
        );
        show(
            &mut report,
            "ablate_monitoring",
            "Ablation — proactive vs reactive monitoring (lead on a drifting service)",
            "drift slope",
            bench::ablate_monitoring(&model),
        );
        show(
            &mut report,
            "ablate_semantics",
            "Ablation — semantic vs syntactic discovery recall",
            "providers",
            bench::ablate_semantics(&model),
        );
    }

    if let Some(path) = json_path {
        let json = report.to_json().to_pretty();
        match std::fs::write(&path, json + "\n") {
            Ok(()) => eprintln!("wrote bench report to {path}"),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
