//! Regenerates every figure of the QASOM evaluation as printed tables.
//!
//! ```text
//! cargo run --release -p qasom-bench --bin repro            # everything
//! cargo run --release -p qasom-bench --bin repro -- vi5 vi12  # a subset
//! ```

use qasom_bench as bench;
use qasom_qos::QosModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |key: &str| args.is_empty() || args.iter().any(|a| a == key || a == "all");
    let model = QosModel::standard();

    println!("QASOM evaluation reproduction — simulated substrate");
    println!("(shapes are comparable to the original figures; absolute values are machine-local)");

    if want("vi5") {
        bench::print_figure(
            "Fig. VI.5a — selection time vs services/activity (5 activities, 4 constraints)",
            "services",
            &bench::fig_vi5a(&model),
        );
        bench::print_figure(
            "Fig. VI.5b — selection time vs #QoS constraints (100 services/activity)",
            "constraints",
            &bench::fig_vi5b(&model),
        );
    }
    if want("vi6") {
        bench::print_figure(
            "Fig. VI.6a — optimality vs services/activity (vs exhaustive optimum)",
            "services",
            &bench::fig_vi6a(&model),
        );
        bench::print_figure(
            "Fig. VI.6b — optimality vs #QoS constraints",
            "constraints",
            &bench::fig_vi6b(&model),
        );
    }
    if want("vi7") {
        bench::print_figure(
            "Fig. VI.7 — selection time per aggregation approach (choice+loop tasks)",
            "services",
            &bench::fig_vi7(&model),
        );
    }
    if want("vi8") {
        bench::print_figure(
            "Fig. VI.8 — optimality per aggregation approach",
            "services",
            &bench::fig_vi8(&model),
        );
    }
    if want("vi9") {
        println!("\n== Fig. VI.9 — generated QoS follows N(m, σ) ==");
        let _ = bench::fig_vi9(&model);
    }
    if want("vi10") {
        bench::print_figure(
            "Fig. VI.10 — selection time with constraints at m vs m+σ",
            "services",
            &bench::fig_vi10(&model),
        );
    }
    if want("vi11") {
        bench::print_figure(
            "Fig. VI.11 — optimality with constraints at m vs m+σ",
            "services",
            &bench::fig_vi11(&model),
        );
    }
    if want("vi12") {
        bench::print_figure(
            "Fig. VI.12 — distributed QASSA: simulated phase times vs provider nodes",
            "providers",
            &bench::fig_vi12(&model),
        );
    }
    if want("vi13") {
        bench::print_figure(
            "Fig. VI.13 — abstract BPEL → behavioural graph transformation time",
            "activities",
            &bench::fig_vi13(),
        );
    }
    if want("v_adapt") {
        bench::print_figure(
            "Ch. V — behavioural adaptation (subgraph homeomorphism) time",
            "activities",
            &bench::fig_v_adapt(),
        );
    }
    if want("loss") {
        bench::print_figure(
            "Extra — fault tolerance under message loss: retries vs no retries (8 providers, 10 seeds)",
            "loss prob",
            &bench::fig_loss(&model),
        );
    }
    if want("activities") {
        bench::print_figure(
            "Extra — selection time vs number of activities (100 services each)",
            "activities",
            &bench::fig_activities(&model),
        );
    }
    if want("scale") {
        bench::print_figure(
            "Scalability — QASSA at large pools (serial vs parallel local phase)",
            "services",
            &bench::scalability(&model),
        );
    }
    if want("compare") {
        println!("\n== Selector comparison (5 activities × 100 services, 10 seeds) ==");
        bench::compare_selectors(&model);
    }
    if want("ablate") {
        bench::print_figure(
            "Ablation — K-means band count k",
            "k",
            &bench::ablate_kmeans_k(&model),
        );
        bench::print_figure(
            "Ablation — global phase repair budget (feasible-rate, tight constraints)",
            "services",
            &bench::ablate_global_strategy(&model),
        );
        bench::print_figure(
            "Ablation — proactive vs reactive monitoring (lead on a drifting service)",
            "drift slope",
            &bench::ablate_monitoring(&model),
        );
        bench::print_figure(
            "Ablation — semantic vs syntactic discovery recall",
            "providers",
            &bench::ablate_semantics(&model),
        );
    }
}
