//! Semantic match degrees.

use std::fmt;

/// Degree of semantic match between a *required* and an *offered* concept.
///
/// This is the standard matchmaking lattice used by QoS-aware service
/// discovery, ordered from best to worst:
///
/// 1. [`Exact`](MatchDegree::Exact) — same concept (possibly through a
///    declared cross-vocabulary equivalence).
/// 2. [`PlugIn`](MatchDegree::PlugIn) — the offer is a *subconcept* of the
///    request: whatever is offered can be plugged in wherever the request
///    applies (e.g. `RoundTripTime` offered for a required `Latency`).
/// 3. [`Subsumes`](MatchDegree::Subsumes) — the offer is a *superconcept*
///    of the request: it covers the request only partially.
/// 4. [`Intersection`](MatchDegree::Intersection) — the concepts share a
///    non-root common ancestor; they are related but neither subsumes the
///    other.
/// 5. [`Fail`](MatchDegree::Fail) — no semantic relation.
///
/// The `Ord` implementation reflects this ranking: a *greater* value is a
/// *better* match, so candidates can be sorted with `sort_by_key` directly.
///
/// # Examples
///
/// ```
/// use qasom_ontology::MatchDegree;
///
/// assert!(MatchDegree::Exact > MatchDegree::PlugIn);
/// assert!(MatchDegree::PlugIn.is_usable());
/// assert!(!MatchDegree::Fail.is_usable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MatchDegree {
    /// No semantic relation between the concepts.
    Fail,
    /// The concepts share a non-root common ancestor.
    Intersection,
    /// The offered concept subsumes (is more general than) the request.
    Subsumes,
    /// The offered concept is subsumed by (is more specific than) the
    /// request.
    PlugIn,
    /// Identical concepts.
    Exact,
}

impl MatchDegree {
    /// Whether the match is strong enough for substitution: exact and
    /// plug-in matches satisfy the request outright.
    pub fn is_usable(self) -> bool {
        matches!(self, MatchDegree::Exact | MatchDegree::PlugIn)
    }

    /// A numeric score in `[0, 1]`, useful for blending the degree with
    /// continuous similarity measures.
    pub fn score(self) -> f64 {
        match self {
            MatchDegree::Exact => 1.0,
            MatchDegree::PlugIn => 0.8,
            MatchDegree::Subsumes => 0.5,
            MatchDegree::Intersection => 0.2,
            MatchDegree::Fail => 0.0,
        }
    }
}

impl fmt::Display for MatchDegree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatchDegree::Exact => "exact",
            MatchDegree::PlugIn => "plug-in",
            MatchDegree::Subsumes => "subsumes",
            MatchDegree::Intersection => "intersection",
            MatchDegree::Fail => "fail",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_ranks_better_matches_higher() {
        let mut degrees = vec![
            MatchDegree::Subsumes,
            MatchDegree::Fail,
            MatchDegree::Exact,
            MatchDegree::PlugIn,
            MatchDegree::Intersection,
        ];
        degrees.sort();
        assert_eq!(
            degrees,
            vec![
                MatchDegree::Fail,
                MatchDegree::Intersection,
                MatchDegree::Subsumes,
                MatchDegree::PlugIn,
                MatchDegree::Exact,
            ]
        );
    }

    #[test]
    fn scores_are_monotone_in_the_ordering() {
        let degrees = [
            MatchDegree::Fail,
            MatchDegree::Intersection,
            MatchDegree::Subsumes,
            MatchDegree::PlugIn,
            MatchDegree::Exact,
        ];
        for pair in degrees.windows(2) {
            assert!(pair[0].score() < pair[1].score());
        }
    }

    #[test]
    fn usability_cutoff_is_plugin() {
        assert!(MatchDegree::Exact.is_usable());
        assert!(MatchDegree::PlugIn.is_usable());
        assert!(!MatchDegree::Subsumes.is_usable());
        assert!(!MatchDegree::Intersection.is_usable());
    }
}
