//! Continuous concept-similarity measures.
//!
//! The behavioural-adaptation engine ranks candidate activity mappings by
//! how close two concepts sit in the taxonomy; discovery uses the same
//! measure to order inexact matches. Both classical measures are provided:
//! inverse edge distance and Wu–Palmer similarity.

use crate::{ConceptId, Ontology};

/// Concept-similarity measures over an [`Ontology`].
///
/// # Examples
///
/// ```
/// use qasom_ontology::{OntologyBuilder, Similarity};
///
/// let mut b = OntologyBuilder::new("qos");
/// let q = b.concept("Quality");
/// let perf = b.subconcept("Performance", q);
/// let lat = b.subconcept("Latency", perf);
/// let thr = b.subconcept("Throughput", perf);
/// let onto = b.build().unwrap();
///
/// let sim = Similarity::new(&onto);
/// assert_eq!(sim.wu_palmer(lat, lat), 1.0);
/// assert!(sim.wu_palmer(lat, thr) > sim.wu_palmer(lat, q));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Similarity<'a> {
    ontology: &'a Ontology,
}

impl<'a> Similarity<'a> {
    /// Creates a similarity view over `ontology`.
    pub fn new(ontology: &'a Ontology) -> Self {
        Similarity { ontology }
    }

    /// Number of `subClassOf` edges on the shortest path between `a` and
    /// `b` that runs through their deepest common ancestor, or `None` when
    /// the concepts are unrelated.
    pub fn edge_distance(&self, a: ConceptId, b: ConceptId) -> Option<u32> {
        if self.ontology.same_concept(a, b) {
            return Some(0);
        }
        let lca = self.ontology.lca(a, b)?;
        let da = self.distance_up(a, lca)?;
        let db = self.distance_up(b, lca)?;
        Some(da + db)
    }

    /// Wu–Palmer similarity: `2·depth(lca) / (depth(a) + depth(b))`,
    /// in `[0, 1]`; `0` when the concepts are unrelated, `1` when equal.
    pub fn wu_palmer(&self, a: ConceptId, b: ConceptId) -> f64 {
        if self.ontology.same_concept(a, b) {
            return 1.0;
        }
        let Some(lca) = self.ontology.lca(a, b) else {
            return 0.0;
        };
        let (da, db) = (self.ontology.depth(a), self.ontology.depth(b));
        if da + db == 0 {
            // Both are roots and unequal: unrelated by construction.
            return 0.0;
        }
        f64::from(2 * self.ontology.depth(lca)) / f64::from(da + db)
    }

    /// Inverse-distance similarity: `1 / (1 + edge_distance)`, `0` for
    /// unrelated concepts.
    pub fn inverse_distance(&self, a: ConceptId, b: ConceptId) -> f64 {
        match self.edge_distance(a, b) {
            Some(d) => 1.0 / (1.0 + f64::from(d)),
            None => 0.0,
        }
    }

    /// BFS upwards from `from` until `target`, returning the hop count.
    fn distance_up(&self, from: ConceptId, target: ConceptId) -> Option<u32> {
        let mut frontier = vec![from];
        let mut dist = 0u32;
        let mut visited = std::collections::HashSet::new();
        visited.insert(from);
        while !frontier.is_empty() {
            if frontier
                .iter()
                .any(|&c| self.ontology.same_concept(c, target))
            {
                return Some(dist);
            }
            let mut next = Vec::new();
            for c in frontier {
                for &p in self.ontology.parents(c) {
                    if visited.insert(p) {
                        next.push(p);
                    }
                }
            }
            frontier = next;
            dist += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OntologyBuilder;

    fn chain() -> (Ontology, Vec<ConceptId>) {
        let mut b = OntologyBuilder::new("t");
        let root = b.concept("C0");
        let mut ids = vec![root];
        for i in 1..5 {
            let prev = *ids.last().unwrap();
            ids.push(b.subconcept(&format!("C{i}"), prev));
        }
        (b.build().unwrap(), ids)
    }

    #[test]
    fn edge_distance_along_a_chain() {
        let (o, ids) = chain();
        let sim = Similarity::new(&o);
        assert_eq!(sim.edge_distance(ids[0], ids[4]), Some(4));
        assert_eq!(sim.edge_distance(ids[2], ids[2]), Some(0));
    }

    #[test]
    fn edge_distance_through_lca() {
        let mut b = OntologyBuilder::new("t");
        let root = b.concept("R");
        let a = b.subconcept("A", root);
        let a1 = b.subconcept("A1", a);
        let c = b.subconcept("B", root);
        let o = b.build().unwrap();
        let sim = Similarity::new(&o);
        // A1 -> A -> R -> B = 3 edges.
        assert_eq!(sim.edge_distance(a1, c), Some(3));
    }

    #[test]
    fn unrelated_roots_have_no_distance() {
        let mut b = OntologyBuilder::new("t");
        let a = b.concept("A");
        let c = b.concept("B");
        let o = b.build().unwrap();
        let sim = Similarity::new(&o);
        assert_eq!(sim.edge_distance(a, c), None);
        assert_eq!(sim.wu_palmer(a, c), 0.0);
        assert_eq!(sim.inverse_distance(a, c), 0.0);
    }

    #[test]
    fn wu_palmer_decreases_with_taxonomic_distance() {
        let (o, ids) = chain();
        let sim = Similarity::new(&o);
        let near = sim.wu_palmer(ids[3], ids[4]);
        let far = sim.wu_palmer(ids[1], ids[4]);
        assert!(near > far, "{near} !> {far}");
    }

    #[test]
    fn wu_palmer_is_symmetric() {
        let (o, ids) = chain();
        let sim = Similarity::new(&o);
        assert_eq!(sim.wu_palmer(ids[1], ids[4]), sim.wu_palmer(ids[4], ids[1]));
    }

    #[test]
    fn inverse_distance_in_unit_interval() {
        let (o, ids) = chain();
        let sim = Similarity::new(&o);
        for &a in &ids {
            for &b in &ids {
                let v = sim.inverse_distance(a, b);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
