//! Namespaced concept identifiers.

use std::fmt;
use std::str::FromStr;

/// A compact IRI of the form `namespace#local_name`.
///
/// IRIs name concepts across the QASOM vocabularies (QoS core, service QoS,
/// infrastructure QoS, user QoS, domain taxonomies). Two IRIs are equal iff
/// both the namespace and the local name are equal; semantic equivalence
/// between *different* IRIs is recorded in the [`Ontology`] instead.
///
/// [`Ontology`]: crate::Ontology
///
/// # Examples
///
/// ```
/// use qasom_ontology::Iri;
///
/// let iri: Iri = "qos#Latency".parse().unwrap();
/// assert_eq!(iri.namespace(), "qos");
/// assert_eq!(iri.local_name(), "Latency");
/// assert_eq!(iri.to_string(), "qos#Latency");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri {
    namespace: String,
    local: String,
}

impl Iri {
    /// Creates an IRI from a namespace and a local name.
    ///
    /// # Panics
    ///
    /// Panics if either part is empty or if either part contains `#`,
    /// which would make the textual form ambiguous.
    pub fn new(namespace: impl Into<String>, local: impl Into<String>) -> Self {
        let namespace = namespace.into();
        let local = local.into();
        assert!(
            !namespace.is_empty() && !local.is_empty(),
            "IRI parts must be non-empty"
        );
        assert!(
            !namespace.contains('#') && !local.contains('#'),
            "IRI parts must not contain '#'"
        );
        Self { namespace, local }
    }

    /// The namespace (vocabulary) part.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// The local name within the namespace.
    pub fn local_name(&self) -> &str {
        &self.local
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.namespace, self.local)
    }
}

/// Error returned when parsing a malformed IRI string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIriError(String);

impl fmt::Display for ParseIriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid IRI syntax: {:?} (expected \"ns#local\")",
            self.0
        )
    }
}

impl std::error::Error for ParseIriError {}

impl FromStr for Iri {
    type Err = ParseIriError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(2, '#');
        let ns = parts.next().unwrap_or_default();
        let local = parts.next().unwrap_or_default();
        if ns.is_empty() || local.is_empty() || local.contains('#') {
            return Err(ParseIriError(s.to_owned()));
        }
        Ok(Iri::new(ns, local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_iri() {
        let iri: Iri = "svc#AudioStreaming".parse().unwrap();
        assert_eq!(iri.namespace(), "svc");
        assert_eq!(iri.local_name(), "AudioStreaming");
    }

    #[test]
    fn display_round_trips() {
        let iri = Iri::new("user", "TotalPrice");
        let parsed: Iri = iri.to_string().parse().unwrap();
        assert_eq!(iri, parsed);
    }

    #[test]
    fn rejects_missing_separator() {
        assert!("Latency".parse::<Iri>().is_err());
    }

    #[test]
    fn rejects_empty_parts() {
        assert!("#Latency".parse::<Iri>().is_err());
        assert!("qos#".parse::<Iri>().is_err());
    }

    #[test]
    fn rejects_double_hash() {
        assert!("qos#a#b".parse::<Iri>().is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn new_panics_on_empty() {
        let _ = Iri::new("", "x");
    }

    #[test]
    fn ordering_is_lexicographic_by_namespace_then_local() {
        let a = Iri::new("a", "Z");
        let b = Iri::new("b", "A");
        assert!(a < b);
    }
}
