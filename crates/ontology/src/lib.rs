//! Lightweight semantic substrate for the QASOM middleware.
//!
//! The original system expressed its QoS vocabularies as OWL ontologies and
//! relied on a description-logic reasoner for aligning the QoS *required* by
//! users with the QoS *offered* by service providers. The alignment the
//! middleware actually needs is subsumption-style reasoning over a concept
//! taxonomy plus cross-vocabulary equivalence links — which is exactly what
//! this crate provides, without dragging in a full OWL stack:
//!
//! * [`Iri`] — namespaced concept identifiers (`ns#local`).
//! * [`Ontology`] / [`OntologyBuilder`] — a concept taxonomy (a DAG of
//!   `subClassOf` edges) with labels, equivalence classes and fast
//!   reachability queries.
//! * [`MatchDegree`] — the classical semantic matching lattice
//!   (exact / plug-in / subsumes / intersection / fail) used by QoS-aware
//!   service discovery.
//! * Similarity measures (edge distance, Wu–Palmer) used to rank inexact
//!   matches.
//!
//! # Examples
//!
//! ```
//! use qasom_ontology::{MatchDegree, OntologyBuilder};
//!
//! let mut b = OntologyBuilder::new("qos");
//! let quality = b.concept("Quality");
//! let latency = b.subconcept("Latency", quality);
//! let rtt = b.subconcept("RoundTripTime", latency);
//! let onto = b.build().unwrap();
//!
//! assert!(onto.is_subconcept_of(rtt, latency));
//! assert_eq!(onto.match_degree(latency, rtt), MatchDegree::PlugIn);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod iri;
mod matching;
mod ontology;
mod similarity;

pub use iri::Iri;
pub use matching::MatchDegree;
pub use ontology::{ConceptId, Ontology, OntologyBuilder, OntologyError};
pub use similarity::Similarity;
