//! Concept taxonomy with subsumption reasoning.

use std::collections::HashMap;
use std::fmt;

use crate::matching::MatchDegree;
use crate::Iri;

/// Opaque handle to a concept inside an [`Ontology`].
///
/// Handles are allocated by [`OntologyBuilder`] and stay valid for the
/// ontology built from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(u32);

impl ConceptId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> Self {
        // Saturate rather than panic: ontologies are loaded from bounded
        // descriptions and cannot reach u32::MAX concepts.
        ConceptId(u32::try_from(i).unwrap_or(u32::MAX))
    }
}

/// Errors produced while building or querying an [`Ontology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// The `subClassOf` relation contains a cycle involving this concept.
    Cycle(Iri),
    /// Two concepts with the same IRI were declared.
    DuplicateConcept(Iri),
    /// A query referenced an IRI that is not part of the ontology.
    UnknownConcept(Iri),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::Cycle(iri) => {
                write!(f, "subClassOf cycle involving concept {iri}")
            }
            OntologyError::DuplicateConcept(iri) => {
                write!(f, "concept {iri} declared twice")
            }
            OntologyError::UnknownConcept(iri) => {
                write!(f, "unknown concept {iri}")
            }
        }
    }
}

impl std::error::Error for OntologyError {}

/// A dense bitset, one bit per concept.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn with_capacity(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }
}

#[derive(Debug, Clone)]
struct ConceptData {
    iri: Iri,
    parents: Vec<ConceptId>,
    children: Vec<ConceptId>,
}

/// Incrementally builds an [`Ontology`].
///
/// The builder allocates [`ConceptId`]s eagerly so concepts can reference
/// each other before the taxonomy is finalised; [`OntologyBuilder::build`]
/// validates the result (acyclicity, well-formed equivalences) and
/// precomputes the reasoning indexes.
///
/// # Examples
///
/// ```
/// use qasom_ontology::OntologyBuilder;
///
/// let mut b = OntologyBuilder::new("qos");
/// let quality = b.concept("Quality");
/// let perf = b.subconcept("Performance", quality);
/// let latency = b.subconcept("Latency", perf);
/// let onto = b.build().unwrap();
/// assert!(onto.is_subconcept_of(latency, quality));
/// ```
#[derive(Debug, Clone)]
pub struct OntologyBuilder {
    default_ns: String,
    concepts: Vec<ConceptData>,
    by_iri: HashMap<Iri, ConceptId>,
    equivalences: Vec<(ConceptId, ConceptId)>,
}

impl OntologyBuilder {
    /// Creates a builder whose bare concept names live in `default_ns`.
    pub fn new(default_ns: impl Into<String>) -> Self {
        OntologyBuilder {
            default_ns: default_ns.into(),
            concepts: Vec::new(),
            by_iri: HashMap::new(),
            equivalences: Vec::new(),
        }
    }

    /// Declares (or returns the existing) root concept named `local` in the
    /// builder's default namespace.
    pub fn concept(&mut self, local: &str) -> ConceptId {
        let iri = Iri::new(self.default_ns.clone(), local);
        self.concept_iri(iri)
    }

    /// Declares (or returns the existing) concept with an explicit IRI.
    pub fn concept_iri(&mut self, iri: Iri) -> ConceptId {
        if let Some(&id) = self.by_iri.get(&iri) {
            return id;
        }
        let id = ConceptId::from_index(self.concepts.len());
        self.by_iri.insert(iri.clone(), id);
        self.concepts.push(ConceptData {
            iri,
            parents: Vec::new(),
            children: Vec::new(),
        });
        id
    }

    /// Declares a concept named `local` as a subconcept of `parent`.
    pub fn subconcept(&mut self, local: &str, parent: ConceptId) -> ConceptId {
        let id = self.concept(local);
        self.subclass(id, parent);
        id
    }

    /// Declares a concept with an explicit IRI as a subconcept of `parent`.
    pub fn subconcept_iri(&mut self, iri: Iri, parent: ConceptId) -> ConceptId {
        let id = self.concept_iri(iri);
        self.subclass(id, parent);
        id
    }

    /// Records `child subClassOf parent`. Duplicate edges are ignored.
    pub fn subclass(&mut self, child: ConceptId, parent: ConceptId) {
        if child == parent {
            // A reflexive edge carries no information: subsumption is
            // reflexive by definition. Recording it would only create a
            // spurious self-cycle.
            return;
        }
        if !self.concepts[child.index()].parents.contains(&parent) {
            self.concepts[child.index()].parents.push(parent);
            self.concepts[parent.index()].children.push(child);
        }
    }

    /// Records that `a` and `b` denote the same concept (cross-vocabulary
    /// alignment, the `owl:equivalentClass` of the original ontologies).
    pub fn equivalent(&mut self, a: ConceptId, b: ConceptId) {
        self.equivalences.push((a, b));
    }

    /// Number of declared concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether no concept has been declared yet.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Finalises the ontology.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::Cycle`] if the `subClassOf` relation
    /// (quotiented by the declared equivalences) is cyclic.
    pub fn build(self) -> Result<Ontology, OntologyError> {
        let n = self.concepts.len();

        // Resolve equivalence classes with a union-find.
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut [usize], mut x: usize) -> usize {
            while uf[x] != x {
                uf[x] = uf[uf[x]];
                x = uf[x];
            }
            x
        }
        for &(a, b) in &self.equivalences {
            let (ra, rb) = (find(&mut uf, a.index()), find(&mut uf, b.index()));
            if ra != rb {
                uf[ra.max(rb)] = ra.min(rb);
            }
        }
        let canonical: Vec<ConceptId> = (0..n)
            .map(|i| {
                let root = find(&mut uf, i);
                ConceptId::from_index(root)
            })
            .collect();

        // Canonicalised parent lists.
        let mut parents: Vec<Vec<ConceptId>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<ConceptId>> = vec![Vec::new(); n];
        for (i, data) in self.concepts.iter().enumerate() {
            let ci = canonical[i];
            for &p in &data.parents {
                let cp = canonical[p.index()];
                if cp != ci && !parents[ci.index()].contains(&cp) {
                    parents[ci.index()].push(cp);
                    children[cp.index()].push(ci);
                }
            }
        }

        // Topological sort over canonical representatives to detect cycles
        // and to compute the transitive closure bottom-up.
        let mut indegree = vec![0usize; n];
        let mut is_canon = vec![false; n];
        for i in 0..n {
            is_canon[canonical[i].index()] = true;
        }
        for i in 0..n {
            if is_canon[i] {
                for p in &parents[i] {
                    indegree[p.index()] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| is_canon[i] && indegree[i] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(i);
            for p in &parents[i] {
                indegree[p.index()] -= 1;
                if indegree[p.index()] == 0 {
                    queue.push(p.index());
                }
            }
        }
        let canon_count = is_canon.iter().filter(|&&c| c).count();
        if topo.len() != canon_count {
            // A cycle always leaves a canonical node with positive
            // indegree; fall back to concept 0 rather than panicking if
            // that reasoning is ever wrong.
            let culprit = (0..n)
                .find(|&i| is_canon[i] && indegree[i] > 0)
                .unwrap_or(0);
            return Err(OntologyError::Cycle(self.concepts[culprit].iri.clone()));
        }

        // Reflexive-transitive ancestor sets, processed leaves-first so a
        // concept's set can absorb its parents' completed sets.
        let mut ancestors: Vec<BitSet> = (0..n).map(|_| BitSet::with_capacity(n)).collect();
        for &i in topo.iter().rev() {
            // topo ends at roots; iterate roots-first
            let mut set = BitSet::with_capacity(n);
            set.set(i);
            for p in parents[i].clone() {
                let parent_set = ancestors[p.index()].clone();
                set.union_with(&parent_set);
            }
            ancestors[i] = set;
        }

        // Depth = longest subclass chain from any root (roots have depth 0).
        let mut depth = vec![0u32; n];
        for &i in topo.iter().rev() {
            depth[i] = parents[i]
                .iter()
                .map(|p| depth[p.index()] + 1)
                .max()
                .unwrap_or(0);
        }

        // Share ancestor/depth data across each equivalence class so that
        // queries on non-canonical ids behave identically.
        for i in 0..n {
            let c = canonical[i].index();
            if c != i {
                ancestors[i] = ancestors[c].clone();
                depth[i] = depth[c];
            }
        }

        Ok(Ontology {
            concepts: self.concepts,
            by_iri: self.by_iri,
            canonical,
            parents,
            children,
            ancestors,
            depth,
            stamp: next_stamp(),
        })
    }
}

/// Allocates a process-unique stamp for a freshly built ontology.
fn next_stamp() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// An immutable concept taxonomy with precomputed subsumption indexes.
///
/// Built via [`OntologyBuilder`]. All queries canonicalise their arguments
/// through the declared equivalence classes first, so aligning two
/// vocabularies is a matter of a few [`OntologyBuilder::equivalent`] calls.
#[derive(Debug, Clone)]
pub struct Ontology {
    concepts: Vec<ConceptData>,
    by_iri: HashMap<Iri, ConceptId>,
    canonical: Vec<ConceptId>,
    parents: Vec<Vec<ConceptId>>,
    children: Vec<Vec<ConceptId>>,
    ancestors: Vec<BitSet>,
    depth: Vec<u32>,
    stamp: u64,
}

impl Ontology {
    /// A process-unique stamp identifying this built taxonomy.
    ///
    /// Each [`OntologyBuilder::build`] call allocates a fresh stamp;
    /// clones share it (they answer queries identically). Caches keyed
    /// on match results use the stamp to detect that they are being
    /// consulted under a different ontology and must invalidate.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Looks a concept up by IRI.
    pub fn concept(&self, iri: &Iri) -> Option<ConceptId> {
        self.by_iri.get(iri).copied()
    }

    /// Looks a concept up by IRI, returning an error for unknown IRIs.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownConcept`] when the IRI was never
    /// declared.
    pub fn require(&self, iri: &Iri) -> Result<ConceptId, OntologyError> {
        self.concept(iri)
            .ok_or_else(|| OntologyError::UnknownConcept(iri.clone()))
    }

    /// The IRI a concept was declared under.
    pub fn iri(&self, id: ConceptId) -> &Iri {
        &self.concepts[id.index()].iri
    }

    /// Number of declared concepts (equivalent concepts count separately).
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology declares no concept.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Iterates over every declared concept handle.
    pub fn iter(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.concepts.len()).map(ConceptId::from_index)
    }

    /// The canonical representative of `id`'s equivalence class.
    ///
    /// Equivalent concepts share one representative; indexes keyed by
    /// concept (such as the registry's capability index) store and probe
    /// canonical ids so declared equivalences cost nothing at query time.
    pub fn canon(&self, id: ConceptId) -> ConceptId {
        self.canonical[id.index()]
    }

    /// Whether `a` and `b` denote the same concept (identical or declared
    /// equivalent).
    pub fn same_concept(&self, a: ConceptId, b: ConceptId) -> bool {
        self.canon(a) == self.canon(b)
    }

    /// Reflexive subsumption test: is `sub` a subconcept of `sup`?
    pub fn is_subconcept_of(&self, sub: ConceptId, sup: ConceptId) -> bool {
        self.ancestors[sub.index()].get(self.canon(sup).index())
    }

    /// Direct superconcepts of `id`.
    pub fn parents(&self, id: ConceptId) -> &[ConceptId] {
        &self.parents[self.canon(id).index()]
    }

    /// Direct subconcepts of `id`.
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        &self.children[self.canon(id).index()]
    }

    /// Longest `subClassOf` chain from a root down to `id`.
    pub fn depth(&self, id: ConceptId) -> u32 {
        self.depth[id.index()]
    }

    /// All (canonical) ancestors of `id`, including itself.
    pub fn ancestors(&self, id: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        self.ancestors[id.index()]
            .iter_ones()
            .map(ConceptId::from_index)
    }

    /// All concepts subsumed by `id`, including itself (query expansion:
    /// everything that can *plug into* a request for `id`).
    pub fn descendants(&self, id: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        self.iter().filter(move |&c| self.is_subconcept_of(c, id))
    }

    /// The root concepts (no superconcept).
    pub fn roots(&self) -> impl Iterator<Item = ConceptId> + '_ {
        self.iter()
            .filter(move |&c| self.canon(c) == c && self.parents(c).is_empty())
    }

    /// Deepest common ancestor of `a` and `b`, if any.
    ///
    /// Ties are broken towards the smallest concept id, which makes the
    /// result deterministic across runs.
    pub fn lca(&self, a: ConceptId, b: ConceptId) -> Option<ConceptId> {
        let (sa, sb) = (&self.ancestors[a.index()], &self.ancestors[b.index()]);
        let mut best: Option<ConceptId> = None;
        for i in sa.iter_ones() {
            if sb.get(i) {
                let cand = ConceptId::from_index(i);
                match best {
                    Some(cur) if self.depth[cur.index()] >= self.depth[i] => {}
                    _ => best = Some(cand),
                }
            }
        }
        best
    }

    /// Whether the two concepts share any ancestor at all.
    pub fn related(&self, a: ConceptId, b: ConceptId) -> bool {
        self.ancestors[a.index()].intersects(&self.ancestors[b.index()])
    }

    /// Semantic match degree between a *required* concept and an *offered*
    /// concept, following the classical service-matchmaking lattice; see
    /// [`MatchDegree`] for the exact rules.
    pub fn match_degree(&self, required: ConceptId, offered: ConceptId) -> MatchDegree {
        if self.same_concept(required, offered) {
            MatchDegree::Exact
        } else if self.is_subconcept_of(offered, required) {
            MatchDegree::PlugIn
        } else if self.is_subconcept_of(required, offered) {
            MatchDegree::Subsumes
        } else if self
            .lca(required, offered)
            .is_some_and(|l| self.depth(l) > 0)
        {
            MatchDegree::Intersection
        } else {
            MatchDegree::Fail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Ontology, ConceptId, ConceptId, ConceptId, ConceptId) {
        let mut b = OntologyBuilder::new("qos");
        let quality = b.concept("Quality");
        let perf = b.subconcept("Performance", quality);
        let latency = b.subconcept("Latency", perf);
        let throughput = b.subconcept("Throughput", perf);
        let onto = b.build().unwrap();
        (onto, quality, perf, latency, throughput)
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive() {
        let (o, quality, perf, latency, _) = sample();
        assert!(o.is_subconcept_of(latency, latency));
        assert!(o.is_subconcept_of(latency, perf));
        assert!(o.is_subconcept_of(latency, quality));
        assert!(!o.is_subconcept_of(quality, latency));
    }

    #[test]
    fn depth_counts_longest_chain() {
        let (o, quality, perf, latency, _) = sample();
        assert_eq!(o.depth(quality), 0);
        assert_eq!(o.depth(perf), 1);
        assert_eq!(o.depth(latency), 2);
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let (o, _, perf, latency, throughput) = sample();
        assert_eq!(o.lca(latency, throughput), Some(perf));
    }

    #[test]
    fn lca_with_self_is_self() {
        let (o, _, _, latency, _) = sample();
        assert_eq!(o.lca(latency, latency), Some(latency));
    }

    #[test]
    fn detects_cycles() {
        let mut b = OntologyBuilder::new("x");
        let a = b.concept("A");
        let c = b.subconcept("B", a);
        b.subclass(a, c);
        assert!(matches!(b.build(), Err(OntologyError::Cycle(_))));
    }

    #[test]
    fn self_edge_is_ignored() {
        let mut b = OntologyBuilder::new("x");
        let a = b.concept("A");
        b.subclass(a, a);
        assert!(b.build().is_ok());
    }

    #[test]
    fn equivalence_aligns_vocabularies() {
        let mut b = OntologyBuilder::new("qos");
        let latency = b.concept("Latency");
        let delay = b.concept_iri(Iri::new("user", "Delay"));
        b.equivalent(latency, delay);
        let o = b.build().unwrap();
        assert!(o.same_concept(latency, delay));
        assert_eq!(o.match_degree(delay, latency), MatchDegree::Exact);
    }

    #[test]
    fn equivalence_propagates_subsumption() {
        let mut b = OntologyBuilder::new("qos");
        let perf = b.concept("Performance");
        let latency = b.subconcept("Latency", perf);
        let delay = b.concept_iri(Iri::new("user", "Delay"));
        b.equivalent(latency, delay);
        let o = b.build().unwrap();
        assert!(o.is_subconcept_of(delay, perf));
    }

    #[test]
    fn match_degrees_follow_the_lattice() {
        let (o, quality, perf, latency, throughput) = sample();
        assert_eq!(o.match_degree(latency, latency), MatchDegree::Exact);
        assert_eq!(o.match_degree(perf, latency), MatchDegree::PlugIn);
        assert_eq!(o.match_degree(latency, perf), MatchDegree::Subsumes);
        // Siblings under a non-root share Performance => intersection.
        assert_eq!(
            o.match_degree(latency, throughput),
            MatchDegree::Intersection
        );
        // Two distinct roots fail.
        let mut b = OntologyBuilder::new("z");
        let r1 = b.concept("R1");
        let r2 = b.concept("R2");
        let o2 = b.build().unwrap();
        assert_eq!(o2.match_degree(r1, r2), MatchDegree::Fail);
        let _ = quality;
    }

    #[test]
    fn require_reports_unknown_iri() {
        let (o, ..) = sample();
        let missing = Iri::new("qos", "Nope");
        assert_eq!(
            o.require(&missing),
            Err(OntologyError::UnknownConcept(missing))
        );
    }

    #[test]
    fn concept_declaration_is_idempotent() {
        let mut b = OntologyBuilder::new("qos");
        let a = b.concept("A");
        let a2 = b.concept("A");
        assert_eq!(a, a2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn multiple_parents_are_supported() {
        let mut b = OntologyBuilder::new("qos");
        let perf = b.concept("Performance");
        let cost = b.concept("Cost");
        let premium = b.subconcept("PremiumLatency", perf);
        b.subclass(premium, cost);
        let o = b.build().unwrap();
        assert!(o.is_subconcept_of(premium, perf));
        assert!(o.is_subconcept_of(premium, cost));
        assert_eq!(o.parents(premium).len(), 2);
    }

    #[test]
    fn descendants_mirror_ancestors() {
        let (o, quality, perf, latency, throughput) = sample();
        let desc: Vec<_> = o.descendants(perf).collect();
        assert!(desc.contains(&perf));
        assert!(desc.contains(&latency));
        assert!(desc.contains(&throughput));
        assert!(!desc.contains(&quality));
        assert_eq!(o.descendants(latency).count(), 1);
    }

    #[test]
    fn roots_are_parentless() {
        let (o, quality, ..) = sample();
        let roots: Vec<_> = o.roots().collect();
        assert_eq!(roots, vec![quality]);
    }

    #[test]
    fn ancestors_iterates_reflexively() {
        let (o, quality, perf, latency, _) = sample();
        let anc: Vec<_> = o.ancestors(latency).collect();
        assert!(anc.contains(&latency));
        assert!(anc.contains(&perf));
        assert!(anc.contains(&quality));
        assert_eq!(anc.len(), 3);
    }
}
