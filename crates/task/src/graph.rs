//! Behavioural graphs: the labelled DAGs behavioural adaptation works on.
//!
//! A user task is transformed into a directed graph whose vertices are the
//! task's activities (plus a synthetic single source and sink) and whose
//! edges are execution-precedence constraints. Loops are *simplified*
//! (Fig. V.4 of the original text): the loop body appears once and its
//! vertices carry the loop's expected iteration count as a weight, which
//! keeps the graph acyclic while preserving QoS-relevant information.

use std::fmt;

use crate::{Activity, TaskNode, UserTask};

/// Handle to a vertex of a [`BehaviouralGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(u32);

impl VertexId {
    /// Index into the graph's vertex table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(i: usize) -> Self {
        // Saturate rather than panic: behavioural graphs are bounded by
        // the task description, which cannot reach u32::MAX vertices.
        VertexId(u32::try_from(i).unwrap_or(u32::MAX))
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Role of a vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// Synthetic single source.
    Start,
    /// Synthetic single sink.
    End,
    /// An abstract activity of the task.
    Activity,
}

/// A labelled vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    kind: VertexKind,
    activity: Option<Activity>,
    iteration_weight: f64,
}

impl Vertex {
    /// The vertex role.
    pub fn kind(&self) -> VertexKind {
        self.kind
    }

    /// The activity labelling this vertex (`None` for start/end).
    pub fn activity(&self) -> Option<&Activity> {
        self.activity.as_ref()
    }

    /// Product of the expected iteration counts of the loops enclosing
    /// this activity (`1.0` outside any loop).
    pub fn iteration_weight(&self) -> f64 {
        self.iteration_weight
    }
}

/// A behavioural graph: single-source, single-sink labelled DAG.
///
/// # Examples
///
/// ```
/// use qasom_task::{Activity, BehaviouralGraph, TaskNode, UserTask};
///
/// let task = UserTask::new(
///     "t",
///     TaskNode::sequence([
///         TaskNode::activity(Activity::new("a", "x#A")),
///         TaskNode::activity(Activity::new("b", "x#B")),
///     ]),
/// )
/// .unwrap();
/// let g = BehaviouralGraph::from_task(&task);
/// assert_eq!(g.activity_vertices().count(), 2);
/// assert!(g.is_acyclic());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviouralGraph {
    vertices: Vec<Vertex>,
    succ: Vec<Vec<VertexId>>,
    pred: Vec<Vec<VertexId>>,
    start: VertexId,
    end: VertexId,
}

impl BehaviouralGraph {
    /// Transforms a user task into its behavioural graph.
    ///
    /// The transformation is linear in the task size: every activity
    /// becomes one vertex; sequences chain sub-graphs, parallel and choice
    /// patterns fan their branches out between the surrounding vertices,
    /// and loops are simplified to their body weighted by the expected
    /// iteration count.
    pub fn from_task(task: &UserTask) -> Self {
        let mut g = Builder::default();
        let start = g.push(Vertex {
            kind: VertexKind::Start,
            activity: None,
            iteration_weight: 1.0,
        });
        let (heads, tails) = g.build(task.root(), 1.0);
        let end = g.push(Vertex {
            kind: VertexKind::End,
            activity: None,
            iteration_weight: 1.0,
        });
        for h in heads {
            g.connect(start, h);
        }
        for t in tails {
            g.connect(t, end);
        }
        BehaviouralGraph {
            vertices: g.vertices,
            succ: g.succ,
            pred: g.pred,
            start,
            end,
        }
    }

    /// The synthetic source.
    pub fn start(&self) -> VertexId {
        self.start
    }

    /// The synthetic sink.
    pub fn end(&self) -> VertexId {
        self.end
    }

    /// Number of vertices (activities + start + end).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the graph has no vertex (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The vertex labelled by `id`.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.index()]
    }

    /// All vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len()).map(VertexId::from_index)
    }

    /// Ids of activity vertices, in task DFS order.
    pub fn activity_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_ids()
            .filter(|&v| self.vertex(v).kind() == VertexKind::Activity)
    }

    /// Successors of `id`.
    pub fn successors(&self, id: VertexId) -> &[VertexId] {
        &self.succ[id.index()]
    }

    /// Predecessors of `id`.
    pub fn predecessors(&self, id: VertexId) -> &[VertexId] {
        &self.pred[id.index()]
    }

    /// Whether the edge `from → to` exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.succ[from.index()].contains(&to)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertex_ids()
            .flat_map(move |v| self.succ[v.index()].iter().map(move |&w| (v, w)))
    }

    /// Finds the vertex labelled by the activity called `name`.
    pub fn find_activity(&self, name: &str) -> Option<VertexId> {
        self.activity_vertices()
            .find(|&v| self.vertex(v).activity().is_some_and(|a| a.name() == name))
    }

    /// A topological order of the vertices, or `None` if the graph is
    /// cyclic (cannot happen for graphs produced by
    /// [`BehaviouralGraph::from_task`]).
    pub fn topological_order(&self) -> Option<Vec<VertexId>> {
        let n = self.vertices.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.pred[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(VertexId::from_index(i));
            for &s in &self.succ[i] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s.index());
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether the graph is a DAG.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// The *restriction* of the graph to `keep`: a new graph containing
    /// the start vertex, the kept vertices and a fresh (edge-less) end
    /// vertex, with an edge `u → v` whenever the original graph has a
    /// path from `u` to `v` that passes through **no other kept vertex**.
    ///
    /// This is how behavioural adaptation extracts the *executed prefix*
    /// of a running task as a pattern graph: the prefix keeps its
    /// precedence structure while unexecuted activities dissolve into
    /// path segments.
    ///
    /// Returns the restricted graph and the mapping from its vertex ids
    /// back to the original ids (the synthetic end maps to the original
    /// end).
    pub fn restriction(
        &self,
        keep: &[VertexId],
    ) -> (
        BehaviouralGraph,
        std::collections::HashMap<VertexId, VertexId>,
    ) {
        let mut g = Builder::default();
        let mut back = std::collections::HashMap::new();
        let mut fwd: std::collections::HashMap<VertexId, VertexId> =
            std::collections::HashMap::new();

        let start = g.push(Vertex {
            kind: VertexKind::Start,
            activity: None,
            iteration_weight: 1.0,
        });
        back.insert(start, self.start);
        fwd.insert(self.start, start);

        let mut kept: Vec<VertexId> = keep
            .iter()
            .copied()
            .filter(|&v| v != self.start && v != self.end)
            .collect();
        kept.sort();
        kept.dedup();
        for &old in &kept {
            let new = g.push(self.vertices[old.index()].clone());
            back.insert(new, old);
            fwd.insert(old, new);
        }
        let end = g.push(Vertex {
            kind: VertexKind::End,
            activity: None,
            iteration_weight: 1.0,
        });
        back.insert(end, self.end);

        // Edge u → v iff a path exists avoiding every other anchor.
        let anchors: Vec<VertexId> = std::iter::once(self.start)
            .chain(kept.iter().copied())
            .collect();
        for &u in &anchors {
            for &v in &anchors {
                if u == v {
                    continue;
                }
                if self.path_avoiding(u, v, &anchors) {
                    g.connect(fwd[&u], fwd[&v]);
                }
            }
        }

        let graph = BehaviouralGraph {
            vertices: g.vertices,
            succ: g.succ,
            pred: g.pred,
            start,
            end,
        };
        (graph, back)
    }

    /// Whether a path `from ⇝ to` exists whose intermediate vertices
    /// avoid every vertex of `anchors` (the endpoints excepted).
    fn path_avoiding(&self, from: VertexId, to: VertexId, anchors: &[VertexId]) -> bool {
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(v) = stack.pop() {
            for &s in &self.succ[v.index()] {
                if s == to {
                    return true;
                }
                if !seen[s.index()] && !anchors.contains(&s) {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// All vertices reachable from `from` (inclusive).
    pub fn reachable_from(&self, from: VertexId) -> Vec<VertexId> {
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            out.push(v);
            for &s in &self.succ[v.index()] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        out.sort();
        out
    }
}

#[derive(Default)]
struct Builder {
    vertices: Vec<Vertex>,
    succ: Vec<Vec<VertexId>>,
    pred: Vec<Vec<VertexId>>,
}

impl Builder {
    fn push(&mut self, v: Vertex) -> VertexId {
        let id = VertexId::from_index(self.vertices.len());
        self.vertices.push(v);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    fn connect(&mut self, from: VertexId, to: VertexId) {
        if !self.succ[from.index()].contains(&to) {
            self.succ[from.index()].push(to);
            self.pred[to.index()].push(from);
        }
    }

    /// Builds the subgraph for `node`, returning its entry and exit
    /// vertices. `weight` is the product of enclosing loops' expected
    /// iteration counts.
    fn build(&mut self, node: &TaskNode, weight: f64) -> (Vec<VertexId>, Vec<VertexId>) {
        match node {
            TaskNode::Activity(a) => {
                let id = self.push(Vertex {
                    kind: VertexKind::Activity,
                    activity: Some(a.clone()),
                    iteration_weight: weight,
                });
                (vec![id], vec![id])
            }
            TaskNode::Sequence(cs) => {
                let mut heads = Vec::new();
                let mut tails: Vec<VertexId> = Vec::new();
                for (i, c) in cs.iter().enumerate() {
                    let (h, t) = self.build(c, weight);
                    if i == 0 {
                        heads = h;
                    } else {
                        for &prev in &tails {
                            for &next in &h {
                                self.connect(prev, next);
                            }
                        }
                    }
                    tails = t;
                }
                (heads, tails)
            }
            TaskNode::Parallel(cs) => {
                let mut heads = Vec::new();
                let mut tails = Vec::new();
                for c in cs {
                    let (h, t) = self.build(c, weight);
                    heads.extend(h);
                    tails.extend(t);
                }
                (heads, tails)
            }
            TaskNode::Choice(bs) => {
                let mut heads = Vec::new();
                let mut tails = Vec::new();
                for (_, c) in bs {
                    let (h, t) = self.build(c, weight);
                    heads.extend(h);
                    tails.extend(t);
                }
                (heads, tails)
            }
            TaskNode::Loop { body, bound } => {
                // Loop simplification: the body appears once, weighted by
                // the expected iteration count; the back edge is dropped so
                // the graph stays acyclic.
                self.build(body, weight * bound.expected().max(1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopBound;

    fn act(name: &str) -> TaskNode {
        TaskNode::activity(Activity::new(name, "t#F"))
    }

    fn graph(node: TaskNode) -> BehaviouralGraph {
        BehaviouralGraph::from_task(&UserTask::new("t", node).unwrap())
    }

    #[test]
    fn sequence_chains_activities() {
        let g = graph(TaskNode::sequence([act("a"), act("b"), act("c")]));
        let a = g.find_activity("a").unwrap();
        let b = g.find_activity("b").unwrap();
        let c = g.find_activity("c").unwrap();
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, c));
        assert!(g.has_edge(g.start(), a));
        assert!(g.has_edge(c, g.end()));
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn parallel_fans_out() {
        let g = graph(TaskNode::sequence([
            act("a"),
            TaskNode::parallel([act("b"), act("c")]),
            act("d"),
        ]));
        let a = g.find_activity("a").unwrap();
        let b = g.find_activity("b").unwrap();
        let c = g.find_activity("c").unwrap();
        let d = g.find_activity("d").unwrap();
        assert!(g.has_edge(a, b) && g.has_edge(a, c));
        assert!(g.has_edge(b, d) && g.has_edge(c, d));
        assert!(!g.has_edge(b, c));
    }

    #[test]
    fn choice_fans_out_like_parallel() {
        let g = graph(TaskNode::choice([(0.5, act("a")), (0.5, act("b"))]));
        assert!(g.has_edge(g.start(), g.find_activity("a").unwrap()));
        assert!(g.has_edge(g.start(), g.find_activity("b").unwrap()));
    }

    #[test]
    fn loop_is_simplified_and_weighted() {
        let g = graph(TaskNode::sequence([
            act("a"),
            TaskNode::repeat(act("b"), LoopBound::new(3.0, 10)),
        ]));
        assert!(g.is_acyclic());
        let b = g.find_activity("b").unwrap();
        assert_eq!(g.vertex(b).iteration_weight(), 3.0);
        let a = g.find_activity("a").unwrap();
        assert_eq!(g.vertex(a).iteration_weight(), 1.0);
    }

    #[test]
    fn nested_loops_multiply_weights() {
        let inner = TaskNode::repeat(act("x"), LoopBound::new(2.0, 5));
        let outer = TaskNode::repeat(inner, LoopBound::new(4.0, 5));
        let g = graph(outer);
        let x = g.find_activity("x").unwrap();
        assert_eq!(g.vertex(x).iteration_weight(), 8.0);
    }

    #[test]
    fn graph_has_single_source_and_sink() {
        let g = graph(TaskNode::parallel([act("a"), act("b"), act("c")]));
        assert!(g.predecessors(g.start()).is_empty());
        assert!(g.successors(g.end()).is_empty());
        let sources: Vec<_> = g
            .vertex_ids()
            .filter(|&v| g.predecessors(v).is_empty())
            .collect();
        assert_eq!(sources, vec![g.start()]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = graph(TaskNode::sequence([act("a"), act("b")]));
        let order = g.topological_order().unwrap();
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        for (from, to) in g.edges() {
            assert!(pos(from) < pos(to));
        }
    }

    #[test]
    fn reachable_from_start_covers_graph() {
        let g = graph(TaskNode::sequence([
            act("a"),
            TaskNode::parallel([act("b"), act("c")]),
        ]));
        assert_eq!(g.reachable_from(g.start()).len(), g.len());
    }

    #[test]
    fn restriction_keeps_prefix_structure() {
        // a ; (b || c) ; d — restrict to {a, b}.
        let g = graph(TaskNode::sequence([
            act("a"),
            TaskNode::parallel([act("b"), act("c")]),
            act("d"),
        ]));
        let a = g.find_activity("a").unwrap();
        let b = g.find_activity("b").unwrap();
        let (r, back) = g.restriction(&[a, b]);
        assert_eq!(r.activity_vertices().count(), 2);
        let ra = r.find_activity("a").unwrap();
        let rb = r.find_activity("b").unwrap();
        assert!(r.has_edge(r.start(), ra));
        assert!(r.has_edge(ra, rb));
        // No edge into the synthetic end.
        assert!(r.predecessors(r.end()).is_empty());
        assert_eq!(back[&ra], a);
        assert_eq!(back[&rb], b);
    }

    #[test]
    fn restriction_edge_requires_path_avoiding_anchors() {
        // a ; b ; c — restricting to {a, c} gives a → c (via b), but
        // restricting to {a, b, c} must NOT connect a directly to c.
        let g = graph(TaskNode::sequence([act("a"), act("b"), act("c")]));
        let a = g.find_activity("a").unwrap();
        let b = g.find_activity("b").unwrap();
        let c = g.find_activity("c").unwrap();

        let (r, _) = g.restriction(&[a, c]);
        assert!(r.has_edge(r.find_activity("a").unwrap(), r.find_activity("c").unwrap()));

        let (r, _) = g.restriction(&[a, b, c]);
        assert!(!r.has_edge(r.find_activity("a").unwrap(), r.find_activity("c").unwrap()));
    }

    #[test]
    fn restriction_of_parallel_branches_has_no_cross_edges() {
        let g = graph(TaskNode::parallel([act("a"), act("b")]));
        let a = g.find_activity("a").unwrap();
        let b = g.find_activity("b").unwrap();
        let (r, _) = g.restriction(&[a, b]);
        let ra = r.find_activity("a").unwrap();
        let rb = r.find_activity("b").unwrap();
        assert!(!r.has_edge(ra, rb) && !r.has_edge(rb, ra));
        assert!(r.has_edge(r.start(), ra) && r.has_edge(r.start(), rb));
    }

    #[test]
    fn transformation_is_linear_in_activities() {
        let acts: Vec<_> = (0..50).map(|i| act(&format!("a{i}"))).collect();
        let g = graph(TaskNode::sequence(acts));
        assert_eq!(g.len(), 52);
        assert_eq!(g.edge_count(), 51);
    }
}
