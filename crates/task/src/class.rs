//! Task classes: sets of behaviourally equivalent task structures.
//!
//! The *task class* concept is the pivot of behavioural adaptation: a user
//! task can usually be accomplished in several ways — reordering
//! activities, splitting or merging them, swapping a parallel block for a
//! sequence. A [`TaskClass`] groups such equivalent behaviours; the
//! [`TaskClassRepository`] (one per middleware instance) stores the classes
//! offered by a pervasive environment and answers the question the
//! adaptation engine asks at runtime: *which alternative behaviours could
//! still realise this task?*

use std::collections::HashMap;

use crate::bpel::{self, BpelError};
use crate::xml::{self, XmlElement};
use crate::UserTask;

/// A named set of behaviourally equivalent user tasks.
///
/// # Examples
///
/// ```
/// use qasom_task::{Activity, TaskClass, TaskNode, UserTask};
///
/// let seq = UserTask::new(
///     "buy-sequential",
///     TaskNode::sequence([
///         TaskNode::activity(Activity::new("book", "shop#BuyBook")),
///         TaskNode::activity(Activity::new("cd", "shop#BuyCd")),
///     ]),
/// )
/// .unwrap();
/// let par = UserTask::new(
///     "buy-parallel",
///     TaskNode::parallel([
///         TaskNode::activity(Activity::new("book", "shop#BuyBook")),
///         TaskNode::activity(Activity::new("cd", "shop#BuyCd")),
///     ]),
/// )
/// .unwrap();
///
/// let mut class = TaskClass::new("buy");
/// class.add_behaviour(seq);
/// class.add_behaviour(par);
/// assert_eq!(class.alternatives("buy-sequential").count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskClass {
    name: String,
    behaviours: Vec<UserTask>,
}

impl TaskClass {
    /// Creates an empty class.
    pub fn new(name: impl Into<String>) -> Self {
        TaskClass {
            name: name.into(),
            behaviours: Vec::new(),
        }
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a behaviour. Behaviours added earlier are considered
    /// preferable: the adaptation engine tries them in insertion order.
    pub fn add_behaviour(&mut self, task: UserTask) -> &mut Self {
        self.behaviours.push(task);
        self
    }

    /// All behaviours, in preference order.
    pub fn behaviours(&self) -> &[UserTask] {
        &self.behaviours
    }

    /// Behaviours other than the one named `current`, in preference order.
    pub fn alternatives<'a>(&'a self, current: &'a str) -> impl Iterator<Item = &'a UserTask> {
        self.behaviours.iter().filter(move |t| t.name() != current)
    }

    /// Looks a behaviour up by task name.
    pub fn behaviour(&self, name: &str) -> Option<&UserTask> {
        self.behaviours.iter().find(|t| t.name() == name)
    }

    /// Number of behaviours.
    pub fn len(&self) -> usize {
        self.behaviours.len()
    }

    /// Whether the class has no behaviour.
    pub fn is_empty(&self) -> bool {
        self.behaviours.is_empty()
    }

    /// Parses the XML form of a task class: a `<taskclass name="…">`
    /// element containing one abstract-BPEL `<process>` per behaviour (in
    /// preference order).
    ///
    /// # Errors
    ///
    /// Fails on malformed XML or invalid embedded processes.
    pub fn from_xml(input: &str) -> Result<TaskClass, BpelError> {
        let root = xml::parse(input).map_err(BpelError::Xml)?;
        TaskClass::from_element(&root)
    }

    fn from_element(el: &XmlElement) -> Result<TaskClass, BpelError> {
        if el.name != "taskclass" {
            return Err(BpelError::Structure(format!(
                "expected <taskclass>, found <{}>",
                el.name
            )));
        }
        let name = el
            .attr("name")
            .ok_or_else(|| BpelError::Structure("<taskclass> requires a name attribute".into()))?;
        let mut class = TaskClass::new(name);
        for child in &el.children {
            class.add_behaviour(bpel::parse_process(child)?);
        }
        Ok(class)
    }

    /// Renders the class in its XML form.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    fn to_element(&self) -> XmlElement {
        let mut el = XmlElement::new("taskclass").with_attr("name", self.name());
        for behaviour in &self.behaviours {
            el.children.push(bpel::process_element(behaviour));
        }
        el
    }
}

/// Repository of the task classes offered by a pervasive environment.
///
/// Behaviour (task) names must be globally unique: inserting a class whose
/// behaviour name collides with an already-registered one replaces the
/// routing entry, mirroring re-deployment of an updated class.
#[derive(Debug, Clone, Default)]
pub struct TaskClassRepository {
    classes: Vec<TaskClass>,
    class_by_task: HashMap<String, usize>,
    class_by_name: HashMap<String, usize>,
}

impl TaskClassRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        TaskClassRepository::default()
    }

    /// Registers a class and indexes all its behaviours.
    pub fn insert(&mut self, class: TaskClass) {
        let idx = self.classes.len();
        for behaviour in class.behaviours() {
            self.class_by_task.insert(behaviour.name().to_owned(), idx);
        }
        self.class_by_name.insert(class.name().to_owned(), idx);
        self.classes.push(class);
    }

    /// The class a task (behaviour) name belongs to.
    pub fn class_of(&self, task_name: &str) -> Option<&TaskClass> {
        self.class_by_task.get(task_name).map(|&i| &self.classes[i])
    }

    /// A class looked up by its own name.
    pub fn get(&self, class_name: &str) -> Option<&TaskClass> {
        self.class_by_name
            .get(class_name)
            .map(|&i| &self.classes[i])
    }

    /// Alternative behaviours for a task, in preference order (empty when
    /// the task is unknown or alone in its class).
    pub fn alternatives<'a>(&'a self, task_name: &'a str) -> impl Iterator<Item = &'a UserTask> {
        self.class_of(task_name)
            .into_iter()
            .flat_map(move |c| c.alternatives(task_name))
    }

    /// Looks a behaviour (task) up by name across all classes.
    pub fn task(&self, task_name: &str) -> Option<&UserTask> {
        self.class_of(task_name)?.behaviour(task_name)
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over the classes.
    pub fn iter(&self) -> impl Iterator<Item = &TaskClass> {
        self.classes.iter()
    }

    /// Parses the XML form of a whole repository: a `<taskclasses>`
    /// element containing `<taskclass>` children.
    ///
    /// # Errors
    ///
    /// Fails on malformed XML or invalid embedded classes.
    pub fn from_xml(input: &str) -> Result<TaskClassRepository, BpelError> {
        let root = xml::parse(input).map_err(BpelError::Xml)?;
        if root.name != "taskclasses" {
            return Err(BpelError::Structure(format!(
                "expected <taskclasses>, found <{}>",
                root.name
            )));
        }
        let mut repo = TaskClassRepository::new();
        for child in &root.children {
            repo.insert(TaskClass::from_element(child)?);
        }
        Ok(repo)
    }

    /// Renders the repository in its XML form.
    pub fn to_xml(&self) -> String {
        let mut el = XmlElement::new("taskclasses");
        for class in &self.classes {
            el.children.push(class.to_element());
        }
        el.to_xml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activity, TaskNode};

    fn task(name: &str, acts: &[&str]) -> UserTask {
        UserTask::new(
            name,
            TaskNode::sequence(
                acts.iter()
                    .map(|a| TaskNode::activity(Activity::new(*a, "t#F"))),
            ),
        )
        .unwrap()
    }

    fn repo() -> TaskClassRepository {
        let mut class = TaskClass::new("shopping");
        class.add_behaviour(task("shop-v1", &["a", "b"]));
        class.add_behaviour(task("shop-v2", &["a", "c"]));
        class.add_behaviour(task("shop-v3", &["d"]));
        let mut repo = TaskClassRepository::new();
        repo.insert(class);
        repo
    }

    #[test]
    fn class_of_routes_each_behaviour() {
        let r = repo();
        for name in ["shop-v1", "shop-v2", "shop-v3"] {
            assert_eq!(r.class_of(name).unwrap().name(), "shopping");
        }
        assert!(r.class_of("nope").is_none());
    }

    #[test]
    fn alternatives_exclude_current() {
        let r = repo();
        let alts: Vec<_> = r.alternatives("shop-v2").map(|t| t.name()).collect();
        assert_eq!(alts, vec!["shop-v1", "shop-v3"]);
    }

    #[test]
    fn alternatives_of_unknown_task_is_empty() {
        let r = repo();
        assert_eq!(r.alternatives("nope").count(), 0);
    }

    #[test]
    fn task_lookup_finds_behaviour() {
        let r = repo();
        assert_eq!(r.task("shop-v3").unwrap().activity_count(), 1);
    }

    #[test]
    fn get_by_class_name() {
        let r = repo();
        assert_eq!(r.get("shopping").unwrap().len(), 3);
        assert!(r.get("nope").is_none());
    }

    #[test]
    fn xml_round_trips_classes() {
        let mut class = TaskClass::new("shopping");
        class.add_behaviour(task("v1", &["a", "b"]));
        class.add_behaviour(task("v2", &["c"]));
        let xml = class.to_xml();
        let reparsed = TaskClass::from_xml(&xml).unwrap();
        assert_eq!(class, reparsed);
    }

    #[test]
    fn xml_round_trips_repositories() {
        let r = repo();
        let xml = r.to_xml();
        let reparsed = TaskClassRepository::from_xml(&xml).unwrap();
        assert_eq!(reparsed.len(), 1);
        assert_eq!(reparsed.get("shopping").unwrap().len(), 3);
        assert_eq!(
            reparsed.task("shop-v2").unwrap(),
            r.task("shop-v2").unwrap()
        );
    }

    #[test]
    fn xml_rejects_wrong_elements() {
        assert!(TaskClass::from_xml("<nope/>").is_err());
        assert!(TaskClassRepository::from_xml("<taskclass/>").is_err());
        assert!(TaskClass::from_xml("<taskclass/>").is_err()); // missing name
    }

    #[test]
    fn xml_class_preserves_preference_order() {
        let doc = r#"<taskclass name="c">
            <process name="first"><invoke name="a" function="x#A"/></process>
            <process name="second"><invoke name="b" function="x#B"/></process>
        </taskclass>"#;
        let class = TaskClass::from_xml(doc).unwrap();
        let names: Vec<_> = class.behaviours().iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn singleton_class_has_no_alternatives() {
        let mut class = TaskClass::new("solo");
        class.add_behaviour(task("only", &["a"]));
        let mut r = TaskClassRepository::new();
        r.insert(class);
        assert_eq!(r.alternatives("only").count(), 0);
    }
}
