//! Abstract activities — the `A_i` of the formal model.

use std::fmt;

use qasom_ontology::Iri;

/// An abstract activity of a user task.
///
/// An activity is a *functional requirement*, not a concrete service: it
/// names a capability (`function`, a domain-ontology concept) plus the data
/// it consumes and produces. QoS-aware discovery later binds one or more
/// concrete services to each activity.
///
/// # Examples
///
/// ```
/// use qasom_task::Activity;
///
/// let browse = Activity::new("browse", "shop#Browse")
///     .with_input("shop#ItemList")
///     .with_output("shop#Catalogue");
/// assert_eq!(browse.name(), "browse");
/// assert_eq!(browse.inputs().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Activity {
    name: String,
    function: Iri,
    inputs: Vec<Iri>,
    outputs: Vec<Iri>,
}

impl Activity {
    /// Creates an activity named `name` requiring capability `function`.
    ///
    /// # Panics
    ///
    /// Panics if `function` is not a well-formed `ns#local` IRI; use
    /// [`Activity::try_new`] for fallible construction.
    pub fn new(name: impl Into<String>, function: &str) -> Self {
        Activity::try_new(name, function)
            .unwrap_or_else(|e| panic!("malformed function IRI {function:?}: {e}"))
    }

    /// Fallible counterpart of [`Activity::new`].
    ///
    /// # Errors
    ///
    /// Returns the IRI parse error when `function` is malformed.
    pub fn try_new(
        name: impl Into<String>,
        function: &str,
    ) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        Ok(Activity {
            name: name.into(),
            function: function.parse()?,
            inputs: Vec::new(),
            outputs: Vec::new(),
        })
    }

    /// Creates an activity from an already-parsed function IRI.
    pub fn with_function(name: impl Into<String>, function: Iri) -> Self {
        Activity {
            name: name.into(),
            function,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a consumed data concept.
    ///
    /// # Panics
    ///
    /// Panics on a malformed IRI; use [`Activity::try_with_input`] for
    /// fallible construction from untrusted input.
    pub fn with_input(self, input: &str) -> Self {
        self.try_with_input(input)
            .unwrap_or_else(|e| panic!("malformed input IRI {input:?}: {e}"))
    }

    /// Fallible counterpart of [`Activity::with_input`].
    ///
    /// # Errors
    ///
    /// Returns the IRI parse error when `input` is malformed.
    pub fn try_with_input(
        mut self,
        input: &str,
    ) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        self.inputs.push(input.parse()?);
        Ok(self)
    }

    /// Adds a produced data concept.
    ///
    /// # Panics
    ///
    /// Panics on a malformed IRI; use [`Activity::try_with_output`] for
    /// fallible construction from untrusted input.
    pub fn with_output(self, output: &str) -> Self {
        self.try_with_output(output)
            .unwrap_or_else(|e| panic!("malformed output IRI {output:?}: {e}"))
    }

    /// Fallible counterpart of [`Activity::with_output`].
    ///
    /// # Errors
    ///
    /// Returns the IRI parse error when `output` is malformed.
    pub fn try_with_output(
        mut self,
        output: &str,
    ) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        self.outputs.push(output.parse()?);
        Ok(self)
    }

    /// The activity's unique name within its task.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The required capability concept.
    pub fn function(&self) -> &Iri {
        &self.function
    }

    /// Consumed data concepts.
    pub fn inputs(&self) -> &[Iri] {
        &self.inputs
    }

    /// Produced data concepts.
    pub fn outputs(&self) -> &[Iri] {
        &self.outputs
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.name, self.function)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_io() {
        let a = Activity::new("register", "med#Register")
            .with_input("med#PatientRecord")
            .with_output("med#Appointment");
        assert_eq!(a.function().to_string(), "med#Register");
        assert_eq!(a.inputs()[0].to_string(), "med#PatientRecord");
        assert_eq!(a.outputs()[0].to_string(), "med#Appointment");
    }

    #[test]
    fn try_new_rejects_bad_iri() {
        assert!(Activity::try_new("x", "no-namespace").is_err());
    }

    #[test]
    fn try_with_io_rejects_bad_iris_without_panicking() {
        let a = Activity::new("x", "shop#Browse");
        assert!(a.clone().try_with_input("no-namespace").is_err());
        assert!(a.clone().try_with_output("no-namespace").is_err());
        // The good path still chains.
        let a = a
            .try_with_input("shop#ItemList")
            .and_then(|a| a.try_with_output("shop#Catalogue"))
            .unwrap();
        assert_eq!(a.inputs().len(), 1);
        assert_eq!(a.outputs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "malformed function IRI")]
    fn new_panics_on_bad_iri() {
        let _ = Activity::new("x", "broken");
    }

    #[test]
    fn display_shows_name_and_function() {
        let a = Activity::new("pay", "shop#Pay");
        assert_eq!(a.to_string(), "pay[shop#Pay]");
    }
}
