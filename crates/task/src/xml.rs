//! A minimal XML subset parser, sufficient for the abstract-BPEL dialect.
//!
//! Supports elements, attributes (single- or double-quoted), self-closing
//! tags, character data, comments, processing instructions / the XML
//! prolog, and the five predefined entities. Doctypes, CDATA sections and
//! namespace processing are *not* supported — the BPEL dialect needs none
//! of them.

use std::fmt;

/// A parsed XML element: name, attributes, children and (trimmed,
/// concatenated) text content.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated character data directly below this element, trimmed.
    pub text: String,
}

impl XmlElement {
    /// Creates an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            ..XmlElement::default()
        }
    }

    /// Value of the first attribute called `name`.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: XmlElement) -> Self {
        self.children.push(child);
        self
    }

    /// Child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serialises the element (and its subtree) with 2-space indentation.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write_indented(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escapes the five predefined XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    offset: usize,
    message: String,
}

impl XmlError {
    /// Byte offset of the error in the input.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parses a document and returns its root element.
///
/// # Errors
///
/// Returns an [`XmlError`] on malformed input (unbalanced tags, bad
/// attribute syntax, trailing content, unknown entity, …).
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments and processing instructions.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->", "unterminated comment")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>", "unterminated processing instruction")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, terminator: &str, msg: &str) -> Result<(), XmlError> {
        match self.bytes[self.pos..]
            .windows(terminator.len())
            .position(|w| w == terminator.as_bytes())
        {
            Some(i) => {
                self.pos += i + terminator.len();
                Ok(())
            }
            None => Err(self.err(msg)),
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.pos += 1;
                return unescape(&raw).map_err(|m| self.err(m));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect_byte(b'<')?;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect_byte(b'>')?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    self.expect_byte(b'=')?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attributes.push((attr, value));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // Content: text, children, comments — until the closing tag.
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                self.skip_until("-->", "unterminated comment")?;
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected </{}>, found </{}>",
                        element.name, close
                    )));
                }
                self.skip_ws();
                self.expect_byte(b'>')?;
                element.text = text.trim().to_owned();
                return Ok(element);
            } else if self.peek() == Some(b'<') {
                element.children.push(self.parse_element()?);
            } else if self.peek().is_some() {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                text.push_str(&unescape(&raw).map_err(|m| self.err(m))?);
            } else {
                return Err(self.err(format!("unterminated element <{}>", element.name)));
            }
        }
    }
}

fn unescape(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity in {s:?}"))?;
        match &rest[..=end] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(format!("unknown entity {other:?}")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = r#"<?xml version="1.0"?>
            <!-- a task -->
            <process name="shopping">
              <sequence>
                <invoke name="browse" function="shop#Browse"/>
                <invoke name='pay' function='shop#Pay'/>
              </sequence>
            </process>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "process");
        assert_eq!(root.attr("name"), Some("shopping"));
        let seq = &root.children[0];
        assert_eq!(seq.children.len(), 2);
        assert_eq!(seq.children[1].attr("function"), Some("shop#Pay"));
    }

    #[test]
    fn captures_text_content() {
        let root = parse("<a>hello <b/> world</a>").unwrap();
        assert_eq!(root.text, "hello  world");
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn unescapes_entities() {
        let root = parse(r#"<a v="&lt;x&gt; &amp; &quot;y&quot;">&apos;t&apos;</a>"#).unwrap();
        assert_eq!(root.attr("v"), Some(r#"<x> & "y""#));
        assert_eq!(root.text, "'t'");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated_element() {
        assert!(parse("<a><b/>").is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn comments_inside_elements_are_skipped() {
        let root = parse("<a><!-- comment --><b/></a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn to_xml_round_trips() {
        let doc = XmlElement::new("process")
            .with_attr("name", "t & co")
            .with_child(XmlElement::new("invoke").with_attr("name", "a"))
            .with_child(
                XmlElement::new("flow")
                    .with_child(XmlElement::new("invoke").with_attr("name", "b")),
            );
        let text = doc.to_xml();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("<a attr=oops/>").unwrap_err();
        assert!(err.offset() > 0);
    }

    #[test]
    fn children_named_filters() {
        let root = parse("<a><x/><y/><x/></a>").unwrap();
        assert_eq!(root.children_named("x").count(), 2);
        assert_eq!(root.children_named("y").count(), 1);
    }
}
