//! The *abstract BPEL* dialect: the XML form users (or tools) specify
//! tasks in, mirroring the specification format of the original platform.
//!
//! The dialect is the executable-free subset of BPEL the thesis relies on:
//!
//! ```xml
//! <process name="shopping">
//!   <sequence>
//!     <invoke name="browse" function="shop#Browse"
//!             inputs="shop#ItemList" outputs="shop#Catalogue"/>
//!     <flow>
//!       <invoke name="buy-book" function="shop#BuyBook"/>
//!       <invoke name="buy-cd" function="shop#BuyCd"/>
//!     </flow>
//!     <if>
//!       <branch probability="0.7">
//!         <invoke name="pay-card" function="shop#PayByCard"/>
//!       </branch>
//!       <branch probability="0.3">
//!         <invoke name="pay-cash" function="shop#PayCash"/>
//!       </branch>
//!     </if>
//!     <while expected="2" max="5">
//!       <invoke name="track" function="shop#TrackOrder"/>
//!     </while>
//!   </sequence>
//! </process>
//! ```
//!
//! `inputs`/`outputs` are space-separated lists of data concepts.
//! [`parse`] and [`print()`](fn@print) round-trip: `parse(&print(&t)).unwrap() == t`.

use std::fmt;

use qasom_ontology::Iri;

use crate::xml::{self, XmlElement, XmlError};
use crate::{Activity, LoopBound, TaskError, TaskNode, UserTask};

/// Errors raised while reading an abstract-BPEL document.
#[derive(Debug, Clone, PartialEq)]
pub enum BpelError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// The XML is well-formed but not valid abstract BPEL.
    Structure(String),
    /// The described task violates a task invariant.
    Task(TaskError),
}

impl fmt::Display for BpelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpelError::Xml(e) => write!(f, "{e}"),
            BpelError::Structure(m) => write!(f, "invalid abstract BPEL: {m}"),
            BpelError::Task(e) => write!(f, "invalid task: {e}"),
        }
    }
}

impl std::error::Error for BpelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BpelError::Xml(e) => Some(e),
            BpelError::Task(e) => Some(e),
            BpelError::Structure(_) => None,
        }
    }
}

impl From<XmlError> for BpelError {
    fn from(e: XmlError) -> Self {
        BpelError::Xml(e)
    }
}

impl From<TaskError> for BpelError {
    fn from(e: TaskError) -> Self {
        BpelError::Task(e)
    }
}

/// Parses an abstract-BPEL document into a validated [`UserTask`].
///
/// # Errors
///
/// Returns a [`BpelError`] for malformed XML, unknown elements, missing
/// attributes or task-invariant violations.
pub fn parse(input: &str) -> Result<UserTask, BpelError> {
    let root = xml::parse(input)?;
    parse_process(&root)
}

/// Parses an already-parsed `<process>` element into a task (used by the
/// task-class dialect, whose documents embed several processes).
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_process(root: &XmlElement) -> Result<UserTask, BpelError> {
    if root.name != "process" {
        return Err(BpelError::Structure(format!(
            "root element must be <process>, found <{}>",
            root.name
        )));
    }
    let name = root
        .attr("name")
        .ok_or_else(|| BpelError::Structure("<process> requires a name attribute".into()))?;
    let node = parse_body(root, "<process>")?;
    Ok(UserTask::new(name, node)?)
}

/// Renders a task as a `<process>` element (used by the task-class
/// dialect's printer).
pub fn process_element(task: &UserTask) -> XmlElement {
    let mut root = XmlElement::new("process").with_attr("name", task.name());
    root.children.push(print_node(task.root()));
    root
}

/// Parses the children of `parent` as a single node (implicit sequence for
/// multiple children).
fn parse_body(parent: &XmlElement, context: &str) -> Result<TaskNode, BpelError> {
    let mut nodes = parent
        .children
        .iter()
        .map(parse_node)
        .collect::<Result<Vec<_>, _>>()?;
    match nodes.len() {
        0 => Err(BpelError::Structure(format!(
            "{context} must contain at least one activity or pattern"
        ))),
        1 => Ok(nodes.remove(0)),
        _ => Ok(TaskNode::Sequence(nodes)),
    }
}

fn parse_node(el: &XmlElement) -> Result<TaskNode, BpelError> {
    match el.name.as_str() {
        "invoke" => parse_invoke(el),
        "sequence" => Ok(TaskNode::Sequence(
            el.children
                .iter()
                .map(parse_node)
                .collect::<Result<_, _>>()?,
        )),
        "flow" => Ok(TaskNode::Parallel(
            el.children
                .iter()
                .map(parse_node)
                .collect::<Result<_, _>>()?,
        )),
        "if" => {
            let mut branches = Vec::new();
            for child in &el.children {
                if child.name != "branch" {
                    return Err(BpelError::Structure(format!(
                        "<if> may only contain <branch> children, found <{}>",
                        child.name
                    )));
                }
                let p = match child.attr("probability") {
                    Some(raw) => raw.parse::<f64>().map_err(|_| {
                        BpelError::Structure(format!("bad branch probability {raw:?}"))
                    })?,
                    None => 1.0,
                };
                branches.push((p, parse_body(child, "<branch>")?));
            }
            Ok(TaskNode::Choice(branches))
        }
        "while" => {
            let expected = parse_f64_attr(el, "expected", 1.0)?;
            let max = parse_u32_attr(el, "max", 1)?;
            if !(expected.is_finite() && expected >= 0.0) || max == 0 {
                return Err(BpelError::Structure(
                    "<while> needs expected >= 0 and max >= 1".into(),
                ));
            }
            Ok(TaskNode::repeat(
                parse_body(el, "<while>")?,
                LoopBound::new(expected, max),
            ))
        }
        other => Err(BpelError::Structure(format!("unknown element <{other}>"))),
    }
}

fn parse_invoke(el: &XmlElement) -> Result<TaskNode, BpelError> {
    let name = el
        .attr("name")
        .ok_or_else(|| BpelError::Structure("<invoke> requires a name attribute".into()))?;
    let function = el
        .attr("function")
        .ok_or_else(|| BpelError::Structure("<invoke> requires a function attribute".into()))?;
    let function: Iri = function
        .parse()
        .map_err(|_| BpelError::Structure(format!("bad function IRI {function:?}")))?;
    let mut activity = Activity::with_function(name, function);
    for (attr, adder) in [("inputs", true), ("outputs", false)] {
        if let Some(list) = el.attr(attr) {
            for item in list.split_whitespace() {
                // Typed flow end to end: a malformed IRI in untrusted
                // task XML surfaces as a parse error, never a panic.
                let added = if adder {
                    activity.try_with_input(item)
                } else {
                    activity.try_with_output(item)
                };
                activity =
                    added.map_err(|_| BpelError::Structure(format!("bad {attr} IRI {item:?}")))?;
            }
        }
    }
    Ok(TaskNode::Activity(activity))
}

fn parse_f64_attr(el: &XmlElement, name: &str, default: f64) -> Result<f64, BpelError> {
    match el.attr(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| BpelError::Structure(format!("bad {name} attribute {raw:?}"))),
        None => Ok(default),
    }
}

fn parse_u32_attr(el: &XmlElement, name: &str, default: u32) -> Result<u32, BpelError> {
    match el.attr(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| BpelError::Structure(format!("bad {name} attribute {raw:?}"))),
        None => Ok(default),
    }
}

/// Prints a task as an abstract-BPEL document.
pub fn print(task: &UserTask) -> String {
    process_element(task).to_xml()
}

fn print_node(node: &TaskNode) -> XmlElement {
    match node {
        TaskNode::Activity(a) => {
            let mut el = XmlElement::new("invoke")
                .with_attr("name", a.name())
                .with_attr("function", a.function().to_string());
            if !a.inputs().is_empty() {
                el = el.with_attr("inputs", iri_list(a.inputs()));
            }
            if !a.outputs().is_empty() {
                el = el.with_attr("outputs", iri_list(a.outputs()));
            }
            el
        }
        TaskNode::Sequence(cs) => {
            let mut el = XmlElement::new("sequence");
            el.children = cs.iter().map(print_node).collect();
            el
        }
        TaskNode::Parallel(cs) => {
            let mut el = XmlElement::new("flow");
            el.children = cs.iter().map(print_node).collect();
            el
        }
        TaskNode::Choice(bs) => {
            let mut el = XmlElement::new("if");
            for (p, c) in bs {
                let mut branch = XmlElement::new("branch").with_attr("probability", format!("{p}"));
                branch.children.push(print_node(c));
                el.children.push(branch);
            }
            el
        }
        TaskNode::Loop { body, bound } => {
            let mut el = XmlElement::new("while")
                .with_attr("expected", format!("{}", bound.expected()))
                .with_attr("max", format!("{}", bound.max()));
            el.children.push(print_node(body));
            el
        }
    }
}

fn iri_list(iris: &[Iri]) -> String {
    iris.iter()
        .map(Iri::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHOPPING: &str = r#"
        <process name="shopping">
          <sequence>
            <invoke name="browse" function="shop#Browse"
                    inputs="shop#ItemList" outputs="shop#Catalogue"/>
            <flow>
              <invoke name="buy-book" function="shop#BuyBook"/>
              <invoke name="buy-cd" function="shop#BuyCd"/>
            </flow>
            <if>
              <branch probability="0.7">
                <invoke name="pay-card" function="shop#PayByCard"/>
              </branch>
              <branch probability="0.3">
                <invoke name="pay-cash" function="shop#PayCash"/>
              </branch>
            </if>
            <while expected="2" max="5">
              <invoke name="track" function="shop#TrackOrder"/>
            </while>
          </sequence>
        </process>"#;

    #[test]
    fn parses_the_full_dialect() {
        let task = parse(SHOPPING).unwrap();
        assert_eq!(task.name(), "shopping");
        assert_eq!(task.activity_count(), 6);
        assert_eq!(task.find("pay-cash").unwrap().index(), 4);
    }

    #[test]
    fn round_trips() {
        let task = parse(SHOPPING).unwrap();
        let printed = print(&task);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(task, reparsed);
    }

    #[test]
    fn implicit_sequence_in_process_body() {
        let task = parse(
            r#"<process name="t">
                 <invoke name="a" function="x#A"/>
                 <invoke name="b" function="x#B"/>
               </process>"#,
        )
        .unwrap();
        assert!(matches!(task.root(), TaskNode::Sequence(cs) if cs.len() == 2));
    }

    #[test]
    fn branch_probability_defaults_and_normalises() {
        let task = parse(
            r#"<process name="t">
                 <if>
                   <branch><invoke name="a" function="x#A"/></branch>
                   <branch><invoke name="b" function="x#B"/></branch>
                 </if>
               </process>"#,
        )
        .unwrap();
        let TaskNode::Choice(bs) = task.root() else {
            panic!()
        };
        assert_eq!(bs[0].0, 0.5);
    }

    #[test]
    fn rejects_unknown_elements() {
        let err = parse(r#"<process name="t"><pick/></process>"#).unwrap_err();
        assert!(matches!(err, BpelError::Structure(_)));
    }

    #[test]
    fn rejects_missing_function() {
        let err = parse(r#"<process name="t"><invoke name="a"/></process>"#).unwrap_err();
        assert!(err.to_string().contains("function"));
    }

    #[test]
    fn rejects_bad_root() {
        assert!(matches!(
            parse("<task/>").unwrap_err(),
            BpelError::Structure(_)
        ));
    }

    #[test]
    fn rejects_empty_process() {
        assert!(parse(r#"<process name="t"/>"#).is_err());
    }

    #[test]
    fn rejects_non_branch_in_if() {
        let err =
            parse(r#"<process name="t"><if><invoke name="a" function="x#A"/></if></process>"#)
                .unwrap_err();
        assert!(err.to_string().contains("branch"));
    }

    #[test]
    fn rejects_duplicate_activity_names_via_task_validation() {
        let err = parse(
            r#"<process name="t">
                 <invoke name="a" function="x#A"/>
                 <invoke name="a" function="x#B"/>
               </process>"#,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            BpelError::Task(TaskError::DuplicateActivity(_))
        ));
    }

    #[test]
    fn malformed_io_iris_surface_as_typed_errors_not_panics() {
        // Regression: untrusted task XML with bad data-concept IRIs must
        // come back as a parse error, never a panic.
        for doc in [
            r#"<process name="t"><invoke name="a" function="x#A" inputs="broken"/></process>"#,
            r#"<process name="t"><invoke name="a" function="x#A" outputs="broken"/></process>"#,
            r#"<process name="t"><invoke name="a" function="broken"/></process>"#,
        ] {
            let err = parse(doc).unwrap_err();
            assert!(matches!(err, BpelError::Structure(_)), "{err}");
        }
    }

    #[test]
    fn while_defaults() {
        let task = parse(
            r#"<process name="t"><while><invoke name="a" function="x#A"/></while></process>"#,
        )
        .unwrap();
        let TaskNode::Loop { bound, .. } = task.root() else {
            panic!()
        };
        assert_eq!(bound.expected(), 1.0);
        assert_eq!(bound.max(), 1);
    }
}
