//! User-task model of the QASOM middleware.
//!
//! A pervasive user phrases a request as an *abstract task*: a hierarchy of
//! [`Activity`] nodes composed by the four classical patterns — sequence,
//! parallel (BPEL `flow`), choice (`if`) and loop (`while`). This crate
//! provides:
//!
//! * the task AST ([`TaskNode`], [`UserTask`]) with validation and
//!   traversal;
//! * the **abstract BPEL** dialect the original platform used to specify
//!   tasks: an XML subset with a hand-written parser/printer
//!   ([`bpel::parse`], [`bpel::print`]) — no external XML stack;
//! * the transformation of a task into a **behavioural graph**
//!   ([`BehaviouralGraph::from_task`]): the labelled DAG (after loop
//!   simplification) on which behavioural adaptation performs its subgraph
//!   homeomorphism test;
//! * the **task class** concept ([`TaskClass`], [`TaskClassRepository`]):
//!   sets of behaviourally equivalent task structures the middleware can
//!   fall back on when a running composition can no longer be repaired by
//!   service substitution.
//!
//! # Examples
//!
//! ```
//! use qasom_task::{Activity, BehaviouralGraph, TaskNode, UserTask};
//!
//! let task = UserTask::new(
//!     "shopping",
//!     TaskNode::sequence([
//!         TaskNode::activity(Activity::new("browse", "shop#Browse")),
//!         TaskNode::parallel([
//!             TaskNode::activity(Activity::new("buy-book", "shop#BuyBook")),
//!             TaskNode::activity(Activity::new("buy-cd", "shop#BuyCd")),
//!         ]),
//!         TaskNode::activity(Activity::new("pay", "shop#Pay")),
//!     ]),
//! )
//! .unwrap();
//!
//! assert_eq!(task.activities().count(), 4);
//! let graph = BehaviouralGraph::from_task(&task);
//! assert!(graph.is_acyclic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod ast;
pub mod bpel;
mod class;
mod graph;
pub mod xml;

pub use activity::Activity;
pub use ast::{ActivityRef, LoopBound, TaskError, TaskNode, UserTask};
pub use class::{TaskClass, TaskClassRepository};
pub use graph::{BehaviouralGraph, Vertex, VertexId, VertexKind};
