//! Task AST: composition patterns over abstract activities.

use std::collections::HashSet;
use std::fmt;

use crate::Activity;

/// Iteration profile of a loop pattern.
///
/// `expected` drives QoS aggregation (a loop multiplies its body's QoS by
/// the expected iteration count); `max` bounds execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopBound {
    expected: f64,
    max: u32,
}

impl LoopBound {
    /// Creates a bound with `expected` mean iterations and a hard cap of
    /// `max`.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is negative/non-finite or `max == 0`.
    pub fn new(expected: f64, max: u32) -> Self {
        assert!(
            expected.is_finite() && expected >= 0.0,
            "expected iteration count must be finite and non-negative"
        );
        assert!(max >= 1, "a loop must allow at least one iteration");
        LoopBound { expected, max }
    }

    /// Mean number of iterations, used by QoS aggregation.
    pub fn expected(&self) -> f64 {
        self.expected
    }

    /// Hard iteration cap, used for pessimistic aggregation and execution.
    pub fn max(&self) -> u32 {
        self.max
    }
}

impl Default for LoopBound {
    fn default() -> Self {
        LoopBound::new(1.0, 1)
    }
}

/// A node of the task AST: an abstract activity or a composition pattern.
///
/// Construct nodes with the associated functions ([`TaskNode::activity`],
/// [`TaskNode::sequence`], [`TaskNode::parallel`], [`TaskNode::choice`],
/// [`TaskNode::repeat`]) and wrap the root in a [`UserTask`], which
/// validates the structure.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskNode {
    /// A leaf: one abstract activity.
    Activity(Activity),
    /// Children execute one after the other.
    Sequence(Vec<TaskNode>),
    /// Children execute concurrently (BPEL `flow`).
    Parallel(Vec<TaskNode>),
    /// Exactly one child executes, picked with the associated probability
    /// (BPEL `if`/`pick`). Probabilities are normalised by
    /// [`UserTask::new`].
    Choice(Vec<(f64, TaskNode)>),
    /// The body executes repeatedly (BPEL `while`).
    Loop {
        /// The repeated sub-task.
        body: Box<TaskNode>,
        /// Iteration profile.
        bound: LoopBound,
    },
}

impl TaskNode {
    /// Leaf node around an activity.
    pub fn activity(activity: Activity) -> Self {
        TaskNode::Activity(activity)
    }

    /// Sequential composition.
    pub fn sequence(children: impl IntoIterator<Item = TaskNode>) -> Self {
        TaskNode::Sequence(children.into_iter().collect())
    }

    /// Parallel composition.
    pub fn parallel(children: impl IntoIterator<Item = TaskNode>) -> Self {
        TaskNode::Parallel(children.into_iter().collect())
    }

    /// Probabilistic choice between branches.
    pub fn choice(branches: impl IntoIterator<Item = (f64, TaskNode)>) -> Self {
        TaskNode::Choice(branches.into_iter().collect())
    }

    /// Choice with equal branch probabilities.
    pub fn choice_uniform(branches: impl IntoIterator<Item = TaskNode>) -> Self {
        let branches: Vec<_> = branches.into_iter().collect();
        let p = 1.0 / branches.len().max(1) as f64;
        TaskNode::Choice(branches.into_iter().map(|b| (p, b)).collect())
    }

    /// Loop with the given iteration profile.
    pub fn repeat(body: TaskNode, bound: LoopBound) -> Self {
        TaskNode::Loop {
            body: Box::new(body),
            bound,
        }
    }

    /// Depth-first, left-to-right traversal of the activities below this
    /// node.
    pub fn for_each_activity<'a>(&'a self, f: &mut impl FnMut(&'a Activity)) {
        match self {
            TaskNode::Activity(a) => f(a),
            TaskNode::Sequence(cs) | TaskNode::Parallel(cs) => {
                for c in cs {
                    c.for_each_activity(f);
                }
            }
            TaskNode::Choice(bs) => {
                for (_, c) in bs {
                    c.for_each_activity(f);
                }
            }
            TaskNode::Loop { body, .. } => body.for_each_activity(f),
        }
    }

    /// Number of activities below this node.
    pub fn activity_count(&self) -> usize {
        let mut n = 0;
        self.for_each_activity(&mut |_| n += 1);
        n
    }

    fn validate(&self) -> Result<(), TaskError> {
        match self {
            TaskNode::Activity(_) => Ok(()),
            TaskNode::Sequence(cs) | TaskNode::Parallel(cs) => {
                if cs.is_empty() {
                    return Err(TaskError::EmptyPattern);
                }
                cs.iter().try_for_each(TaskNode::validate)
            }
            TaskNode::Choice(bs) => {
                if bs.is_empty() {
                    return Err(TaskError::EmptyPattern);
                }
                if bs.iter().any(|&(p, _)| !(p.is_finite() && p > 0.0)) {
                    return Err(TaskError::BadProbability);
                }
                bs.iter().try_for_each(|(_, c)| c.validate())
            }
            TaskNode::Loop { body, .. } => body.validate(),
        }
    }

    fn normalise_probabilities(&mut self) {
        match self {
            TaskNode::Activity(_) => {}
            TaskNode::Sequence(cs) | TaskNode::Parallel(cs) => {
                cs.iter_mut().for_each(TaskNode::normalise_probabilities);
            }
            TaskNode::Choice(bs) => {
                let total: f64 = bs.iter().map(|&(p, _)| p).sum();
                if total > 0.0 {
                    for (p, _) in bs.iter_mut() {
                        *p /= total;
                    }
                }
                for (_, c) in bs.iter_mut() {
                    c.normalise_probabilities();
                }
            }
            TaskNode::Loop { body, .. } => body.normalise_probabilities(),
        }
    }
}

/// Errors detected while validating a task structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task contains no activity at all.
    NoActivity,
    /// Two activities share a name.
    DuplicateActivity(String),
    /// A sequence/parallel/choice pattern has no child.
    EmptyPattern,
    /// A choice branch has a non-positive or non-finite probability.
    BadProbability,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::NoActivity => write!(f, "task contains no activity"),
            TaskError::DuplicateActivity(n) => {
                write!(f, "duplicate activity name {n:?}")
            }
            TaskError::EmptyPattern => write!(f, "composition pattern has no child"),
            TaskError::BadProbability => {
                write!(f, "choice probabilities must be positive and finite")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// A reference to an activity inside a task, together with its stable
/// index (DFS order) — the position the selection algorithm uses to line
/// candidates up per activity.
#[derive(Debug, Clone, Copy)]
pub struct ActivityRef<'a> {
    index: usize,
    activity: &'a Activity,
}

impl<'a> ActivityRef<'a> {
    /// Stable index of the activity within its task (DFS order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The referenced activity.
    pub fn activity(&self) -> &'a Activity {
        self.activity
    }
}

/// A validated user task: a named, well-formed task AST.
///
/// Validation guarantees: at least one activity, unique activity names,
/// non-empty patterns, positive choice probabilities (normalised to sum to
/// one per choice).
#[derive(Debug, Clone, PartialEq)]
pub struct UserTask {
    name: String,
    root: TaskNode,
}

impl UserTask {
    /// Validates and wraps a task structure.
    ///
    /// # Errors
    ///
    /// Returns the first [`TaskError`] found.
    pub fn new(name: impl Into<String>, mut root: TaskNode) -> Result<Self, TaskError> {
        root.validate()?;
        if root.activity_count() == 0 {
            return Err(TaskError::NoActivity);
        }
        let mut seen = HashSet::new();
        let mut dup = None;
        root.for_each_activity(&mut |a| {
            if dup.is_none() && !seen.insert(a.name().to_owned()) {
                dup = Some(a.name().to_owned());
            }
        });
        if let Some(n) = dup {
            return Err(TaskError::DuplicateActivity(n));
        }
        root.normalise_probabilities();
        Ok(UserTask {
            name: name.into(),
            root,
        })
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node of the AST.
    pub fn root(&self) -> &TaskNode {
        &self.root
    }

    /// Activities in DFS order, with their stable indices.
    pub fn activities(&self) -> impl Iterator<Item = ActivityRef<'_>> {
        let mut v = Vec::new();
        self.root.for_each_activity(&mut |a| v.push(a));
        v.into_iter()
            .enumerate()
            .map(|(index, activity)| ActivityRef { index, activity })
    }

    /// Number of activities in the task.
    pub fn activity_count(&self) -> usize {
        self.root.activity_count()
    }

    /// Finds an activity by name.
    pub fn find(&self, name: &str) -> Option<ActivityRef<'_>> {
        self.activities().find(|r| r.activity().name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(name: &str) -> TaskNode {
        TaskNode::activity(Activity::new(name, "t#F"))
    }

    #[test]
    fn counts_activities_across_patterns() {
        let node = TaskNode::sequence([
            act("a"),
            TaskNode::parallel([act("b"), act("c")]),
            TaskNode::choice([(0.5, act("d")), (0.5, act("e"))]),
            TaskNode::repeat(act("f"), LoopBound::new(2.0, 5)),
        ]);
        assert_eq!(node.activity_count(), 6);
    }

    #[test]
    fn task_rejects_duplicate_names() {
        let node = TaskNode::sequence([act("a"), act("a")]);
        assert_eq!(
            UserTask::new("t", node),
            Err(TaskError::DuplicateActivity("a".into()))
        );
    }

    #[test]
    fn task_rejects_empty_patterns() {
        assert_eq!(
            UserTask::new("t", TaskNode::sequence([])),
            Err(TaskError::EmptyPattern)
        );
        assert_eq!(
            UserTask::new("t", TaskNode::parallel([])),
            Err(TaskError::EmptyPattern)
        );
        assert_eq!(
            UserTask::new("t", TaskNode::choice([])),
            Err(TaskError::EmptyPattern)
        );
    }

    #[test]
    fn task_rejects_bad_probabilities() {
        let node = TaskNode::choice([(0.0, act("a")), (1.0, act("b"))]);
        assert_eq!(UserTask::new("t", node), Err(TaskError::BadProbability));
    }

    #[test]
    fn probabilities_are_normalised() {
        let node = TaskNode::choice([(2.0, act("a")), (2.0, act("b"))]);
        let task = UserTask::new("t", node).unwrap();
        let TaskNode::Choice(branches) = task.root() else {
            panic!("expected choice root")
        };
        assert_eq!(branches[0].0, 0.5);
        assert_eq!(branches[1].0, 0.5);
    }

    #[test]
    fn activity_indices_follow_dfs_order() {
        let node = TaskNode::sequence([act("a"), TaskNode::parallel([act("b"), act("c")])]);
        let task = UserTask::new("t", node).unwrap();
        let names: Vec<_> = task
            .activities()
            .map(|r| (r.index(), r.activity().name().to_owned()))
            .collect();
        assert_eq!(
            names,
            vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]
        );
    }

    #[test]
    fn find_locates_by_name() {
        let node = TaskNode::sequence([act("a"), act("b")]);
        let task = UserTask::new("t", node).unwrap();
        assert_eq!(task.find("b").unwrap().index(), 1);
        assert!(task.find("z").is_none());
    }

    #[test]
    fn choice_uniform_splits_evenly() {
        let node = TaskNode::choice_uniform([act("a"), act("b"), act("c"), act("d")]);
        let TaskNode::Choice(branches) = &node else {
            panic!()
        };
        assert!(branches.iter().all(|&(p, _)| p == 0.25));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn loop_bound_rejects_zero_max() {
        let _ = LoopBound::new(1.0, 0);
    }

    #[test]
    fn empty_task_is_rejected() {
        // A loop around nothing is impossible to build; the smallest
        // invalid case is an empty sequence, covered above. A bare pattern
        // with children but no activities cannot exist by construction, so
        // NoActivity is unreachable through the public constructors — keep
        // the variant for forward compatibility of external builders.
        assert!(UserTask::new("t", TaskNode::sequence([act("a")])).is_ok());
    }
}
