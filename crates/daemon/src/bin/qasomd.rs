//! `qasomd` — the QASOM serving daemon.
//!
//! Binds a TCP listener, builds a synthetic provider market and serves
//! composition sessions over the frame protocol until stdin closes
//! (pipe `/dev/null` to run until killed). See `DESIGN.md` §10 for the
//! protocol and the admission model.
//!
//! With `--data-dir` the registry is durable: registrations are
//! journaled to a CRC-framed WAL under the directory, snapshots are
//! checkpointed, and a restart pointed at the same directory *warm
//! boots* — the directory is recovered from snapshot + WAL tail
//! instead of re-registering the provider market (DESIGN.md §14).
//!
//! ```text
//! qasomd [--addr HOST:PORT] [--seed N] [--providers N]
//!        [--queue N] [--quota N] [--batch N] [--data-dir DIR]
//! ```

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use qasom::{Environment, SharedEnvironment};
use qasom_daemon::{AdmissionConfig, BrokerConfig};
use qasom_netsim::runtime::SyntheticService;
use qasom_obs::{MemoryRecorder, Recorder};
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_registry::persist::{FileBackend, PersistConfig, RegistryJournal};
use qasom_registry::ServiceDescription;

struct Options {
    addr: String,
    seed: u64,
    providers: usize,
    admission: AdmissionConfig,
    data_dir: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7479".to_owned(),
            seed: 42,
            providers: 8,
            admission: AdmissionConfig::default(),
            data_dir: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--seed" => options.seed = parse(&value("--seed")?)?,
            "--providers" => options.providers = parse(&value("--providers")?)?,
            "--queue" => options.admission.queue_capacity = parse(&value("--queue")?)?,
            "--quota" => options.admission.client_quota = parse(&value("--quota")?)?,
            "--batch" => options.admission.batch_max = parse(&value("--batch")?)?,
            "--data-dir" => options.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(options)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("could not parse {raw:?} as a number"))
}

fn usage() -> String {
    "usage: qasomd [--addr HOST:PORT] [--seed N] [--providers N] \
     [--queue N] [--quota N] [--batch N] [--data-dir DIR]"
        .to_owned()
}

fn market(
    seed: u64,
    providers: usize,
    data_dir: Option<&Path>,
) -> Result<SharedEnvironment, String> {
    let mut builder = OntologyBuilder::new("d");
    builder.concept("A");
    let ontology = builder.build().expect("static demo ontology builds");
    let mut env = Environment::new(QosModel::standard(), ontology, seed);
    env.set_recorder(Arc::new(MemoryRecorder::new()) as Arc<dyn Recorder>);

    let mut recovered = false;
    if let Some(dir) = data_dir {
        let backend = FileBackend::open(dir)
            .map_err(|e| format!("cannot open data dir {}: {e}", dir.display()))?;
        // The adopted registry is re-bound to the environment's own
        // ontology, so recovery itself runs unbound.
        let (registry, journal, report) =
            RegistryJournal::open(backend, PersistConfig::default(), None)
                .map_err(|e| format!("cannot recover registry from {}: {e}", dir.display()))?;
        if report.recovered_anything() {
            env.adopt_registry(registry);
            env.attach_journal(journal);
            // Registry rows survived the restart; runtime behaviours
            // live only in memory and are re-created from the
            // advertised QoS (the market is synthetic and faithful).
            let live: Vec<_> = env
                .registry()
                .iter()
                .map(|(id, desc)| (id, desc.qos().clone()))
                .collect();
            let count = live.len();
            for (id, nominal) in live {
                env.attach_behaviour(id, SyntheticService::new(nominal));
            }
            eprintln!(
                "qasomd: warm restart from {}: {count} live services at epoch {} \
                 (snapshot cursor {}, {} WAL events replayed{})",
                dir.display(),
                env.epoch(),
                report.snapshot_cursor,
                report.wal_events_applied,
                if report.torn_tail {
                    ", torn tail discarded"
                } else {
                    ""
                },
            );
            recovered = true;
        } else {
            // Cold boot: attach the journal first so the provider
            // market below is journaled from the first registration.
            env.attach_journal(journal);
        }
    }

    if !recovered {
        let rt = env
            .model()
            .property("ResponseTime")
            .expect("the standard model defines ResponseTime");
        for i in 0..providers.max(1) {
            let desc =
                ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + i as f64);
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
    }
    Ok(SharedEnvironment::new(env))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let shared = match market(options.seed, options.providers, options.data_dir.as_deref()) {
        Ok(shared) => shared,
        Err(message) => {
            eprintln!("qasomd: {message}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match qasom_daemon::spawn(
        &options.addr,
        shared.clone(),
        BrokerConfig {
            admission: options.admission,
        },
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("qasomd: cannot bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "qasomd: serving on {} (seed {}, {} providers, queue {}, quota {}, batch {})",
        handle.addr(),
        options.seed,
        options.providers,
        options.admission.queue_capacity,
        options.admission.client_quota,
        options.admission.batch_max
    );
    if let Some(dir) = &options.data_dir {
        eprintln!("qasomd: journaling registry to {}", dir.display());
    }
    eprintln!("qasomd: close stdin to stop");

    // Block until stdin closes — no polling, no clocks.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        if line.is_err() {
            break;
        }
    }

    handle.stop();
    // A final checkpoint makes the next boot snapshot-only (empty WAL).
    shared.checkpoint_registry();
    let report = shared.with(|e| e.run_report("qasomd"));
    println!("{}", report.to_pretty_string());
    ExitCode::SUCCESS
}
