//! The per-connection session state machine.
//!
//! Both transports (TCP, loopback) feed decoded frames through
//! [`ConnectionSession::on_frame`]; the machine enforces protocol order
//! and turns valid frames into [`SessionEvent`]s for the broker:
//!
//! ```text
//!              HELLO                 COMPOSE*
//! AwaitingHello ────▶ Ready ────────────────────▶ Ready
//!        │              │ BYE
//!        │              ▼
//!        └───────▶   Closed   (any out-of-turn frame ⇒ protocol error)
//! ```

use qasom::UserRequest;

use crate::frame::{Frame, FrameType, ProtocolError};
use crate::wire;

/// Where a connection stands in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Nothing received yet; only `HELLO` is legal.
    AwaitingHello,
    /// Handshake done; `COMPOSE` and `BYE` are legal.
    Ready,
    /// `BYE` received (or a protocol error occurred); nothing is legal.
    Closed,
}

/// A valid inbound frame, interpreted.
#[derive(Debug)]
pub enum SessionEvent {
    /// The client introduced itself; answer with `HELLO_ACK`.
    Hello {
        /// The client's self-declared identity (quota key).
        client: String,
    },
    /// A composition session to admit.
    Submit {
        /// Client-chosen correlation id, echoed on the response frame.
        corr_id: u64,
        /// The decoded, re-validated request (boxed: it dwarfs the other
        /// variants, and events move through channels by value).
        request: Box<UserRequest>,
        /// The request-body bytes — the batch signature.
        signature: Vec<u8>,
    },
    /// Orderly goodbye; the connection is done.
    Bye,
}

/// The server side of one connection.
#[derive(Debug)]
pub struct ConnectionSession {
    state: SessionState,
    client: Option<String>,
}

impl Default for ConnectionSession {
    fn default() -> Self {
        ConnectionSession::new()
    }
}

impl ConnectionSession {
    /// A fresh connection awaiting its handshake.
    pub fn new() -> Self {
        ConnectionSession {
            state: SessionState::AwaitingHello,
            client: None,
        }
    }

    /// Current protocol state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The client identity, once the handshake happened.
    pub fn client(&self) -> Option<&str> {
        self.client.as_deref()
    }

    /// Feeds one decoded inbound frame.
    ///
    /// # Errors
    ///
    /// Protocol errors (out-of-turn frames, malformed payloads,
    /// client-only frame types) close the session: the caller should
    /// answer with an `ERROR` frame and drop the connection.
    pub fn on_frame(&mut self, frame: &Frame) -> Result<SessionEvent, ProtocolError> {
        let event = match (self.state, frame.frame_type) {
            (SessionState::AwaitingHello, FrameType::Hello) => {
                let client = wire::decode_hello(&frame.payload)?;
                self.state = SessionState::Ready;
                self.client = Some(client.clone());
                Ok(SessionEvent::Hello { client })
            }
            (SessionState::Ready, FrameType::Compose) => {
                let (corr_id, request, signature) = wire::decode_compose(&frame.payload)?;
                Ok(SessionEvent::Submit {
                    corr_id,
                    request: Box::new(request),
                    signature,
                })
            }
            (SessionState::Ready, FrameType::Bye) => {
                self.state = SessionState::Closed;
                Ok(SessionEvent::Bye)
            }
            (SessionState::AwaitingHello, _) => {
                Err(ProtocolError::OutOfTurn("expected HELLO first"))
            }
            (SessionState::Ready, FrameType::Hello) => {
                Err(ProtocolError::OutOfTurn("second HELLO"))
            }
            (SessionState::Closed, _) => Err(ProtocolError::OutOfTurn("session closed")),
            // Server-to-client frame types arriving inbound.
            (SessionState::Ready, _) => {
                Err(ProtocolError::OutOfTurn("server-only frame from client"))
            }
        };
        if event.is_err() {
            self.state = SessionState::Closed;
        }
        event
    }
}

/// The client-side view of a finished session, decoded from the
/// response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOutcome {
    /// The session completed; the summary digests the execution.
    Completed(wire::ExecutionSummary),
    /// Admission control shed the session; retry after the hint.
    Busy {
        /// Deterministic back-off hint, in broker ticks.
        retry_after_ticks: u32,
    },
    /// Static analysis rejected the request.
    Rejected(Vec<wire::WireDiagnostic>),
    /// The daemon failed the session (compose/execute error).
    Failed {
        /// Registry epoch at failure time.
        epoch: u64,
        /// Rendered error.
        message: String,
    },
}

/// An event a client reads off its connection.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// The daemon accepted the handshake.
    HelloAck(wire::HelloAck),
    /// A session the client submitted finished.
    Reply {
        /// The correlation id the client chose at submit time.
        corr_id: u64,
        /// How the session ended.
        outcome: ClientOutcome,
    },
}

/// Decodes one server-to-client frame.
///
/// # Errors
///
/// Fails on malformed payloads and on client-to-server frame types.
pub fn decode_client_event(frame: &Frame) -> Result<ClientEvent, ProtocolError> {
    match frame.frame_type {
        FrameType::HelloAck => Ok(ClientEvent::HelloAck(wire::decode_hello_ack(
            &frame.payload,
        )?)),
        FrameType::Completed => {
            let (corr_id, summary) = wire::decode_completed(&frame.payload)?;
            Ok(ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Completed(summary),
            })
        }
        FrameType::Busy => {
            let (corr_id, retry_after_ticks) = wire::decode_busy(&frame.payload)?;
            Ok(ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Busy { retry_after_ticks },
            })
        }
        FrameType::Rejected => {
            let (corr_id, diags) = wire::decode_rejected(&frame.payload)?;
            Ok(ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Rejected(diags),
            })
        }
        FrameType::Error => {
            let (corr_id, epoch, message) = wire::decode_error(&frame.payload)?;
            Ok(ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Failed { epoch, message },
            })
        }
        FrameType::Hello | FrameType::Compose | FrameType::Bye => {
            Err(ProtocolError::OutOfTurn("client-only frame from server"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn compose_frame() -> Frame {
        let request = UserRequest::new(
            UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap(),
        );
        Frame {
            frame_type: FrameType::Compose,
            payload: wire::encode_compose(1, &request).unwrap(),
        }
    }

    #[test]
    fn happy_path_walks_the_state_machine() {
        let mut s = ConnectionSession::new();
        let hello = Frame {
            frame_type: FrameType::Hello,
            payload: wire::encode_hello("c1").unwrap(),
        };
        assert!(matches!(
            s.on_frame(&hello),
            Ok(SessionEvent::Hello { client }) if client == "c1"
        ));
        assert_eq!(s.state(), SessionState::Ready);
        assert!(matches!(
            s.on_frame(&compose_frame()),
            Ok(SessionEvent::Submit { corr_id: 1, .. })
        ));
        assert!(matches!(
            s.on_frame(&Frame::bare(FrameType::Bye)),
            Ok(SessionEvent::Bye)
        ));
        assert_eq!(s.state(), SessionState::Closed);
    }

    #[test]
    fn compose_before_hello_is_out_of_turn_and_closes() {
        let mut s = ConnectionSession::new();
        assert!(matches!(
            s.on_frame(&compose_frame()),
            Err(ProtocolError::OutOfTurn(_))
        ));
        assert_eq!(s.state(), SessionState::Closed);
        // Nothing is accepted after closure, not even a HELLO.
        let hello = Frame {
            frame_type: FrameType::Hello,
            payload: wire::encode_hello("late").unwrap(),
        };
        assert!(s.on_frame(&hello).is_err());
    }

    #[test]
    fn second_hello_is_rejected() {
        let mut s = ConnectionSession::new();
        let hello = Frame {
            frame_type: FrameType::Hello,
            payload: wire::encode_hello("c1").unwrap(),
        };
        s.on_frame(&hello).unwrap();
        assert!(matches!(
            s.on_frame(&hello),
            Err(ProtocolError::OutOfTurn("second HELLO"))
        ));
    }
}
