//! The `qasomd` frame layer: length-prefixed binary frames.
//!
//! Every protocol message is one frame on the wire:
//!
//! ```text
//! ┌─────────────┬───────────┬──────────────────────┐
//! │ length: u32 │ type: u8  │ payload: length-1 B  │
//! │ big-endian  │           │ (see [`crate::wire`]) │
//! └─────────────┴───────────┴──────────────────────┘
//! ```
//!
//! `length` counts the type byte plus the payload, never itself. The
//! same codec backs both transports: TCP sockets and the in-process
//! loopback used by the hermetic tests — loopback "connections" carry
//! real encoded bytes through [`Frame::encode`] / [`Frame::take`].

use std::fmt;
use std::io::{Read, Write};

/// Version byte clients present in `HELLO`.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on `length`; larger frames are a protocol error (bounds
/// the memory one connection can pin before admission control even
/// sees it).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Frame discriminators (the type byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → daemon: handshake (protocol version + client name).
    Hello = 0x01,
    /// Daemon → client: handshake accepted (registry epoch, batch cap).
    HelloAck = 0x02,
    /// Client → daemon: one composition session request.
    Compose = 0x03,
    /// Daemon → client: session completed; execution summary follows.
    Completed = 0x04,
    /// Daemon → client: session shed by admission control.
    Busy = 0x05,
    /// Daemon → client: session rejected by static analysis.
    Rejected = 0x06,
    /// Daemon → client: session failed (compose/execute error).
    Error = 0x07,
    /// Client → daemon: orderly goodbye.
    Bye = 0x08,
}

impl FrameType {
    /// The wire byte.
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Parses the wire byte.
    pub fn from_byte(byte: u8) -> Option<FrameType> {
        match byte {
            0x01 => Some(FrameType::Hello),
            0x02 => Some(FrameType::HelloAck),
            0x03 => Some(FrameType::Compose),
            0x04 => Some(FrameType::Completed),
            0x05 => Some(FrameType::Busy),
            0x06 => Some(FrameType::Rejected),
            0x07 => Some(FrameType::Error),
            0x08 => Some(FrameType::Bye),
            _ => None,
        }
    }
}

/// One protocol frame: a type byte and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame discriminator.
    pub frame_type: FrameType,
    /// The encoded payload (see [`crate::wire`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with an empty payload.
    pub fn bare(frame_type: FrameType) -> Self {
        Frame {
            frame_type,
            payload: Vec::new(),
        }
    }

    /// Encodes the frame into `out` (length prefix + type + payload).
    ///
    /// # Errors
    ///
    /// Fails when the payload exceeds [`MAX_FRAME_LEN`].
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
        let len = self.payload.len() as u64 + 1;
        if len > u64::from(MAX_FRAME_LEN) {
            return Err(ProtocolError::TooLarge { len });
        }
        out.extend_from_slice(&(len as u32).to_be_bytes());
        out.push(self.frame_type.byte());
        out.extend_from_slice(&self.payload);
        Ok(())
    }

    /// Takes the first complete frame off the front of `buf`, leaving
    /// any trailing bytes in place. Returns `Ok(None)` when `buf` holds
    /// only a partial frame.
    ///
    /// # Errors
    ///
    /// Fails on an oversized length prefix or an unknown type byte.
    pub fn take(buf: &mut Vec<u8>) -> Result<Option<Frame>, ProtocolError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(ProtocolError::TooLarge {
                len: u64::from(len),
            });
        }
        let total = 4 + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let frame_type = FrameType::from_byte(buf[4]).ok_or(ProtocolError::UnknownType(buf[4]))?;
        let payload = buf[5..total].to_vec();
        buf.drain(..total);
        Ok(Some(Frame {
            frame_type,
            payload,
        }))
    }

    /// Writes the frame to a blocking byte sink (the TCP transport).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and oversized payloads.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ProtocolError> {
        let mut bytes = Vec::with_capacity(5 + self.payload.len());
        self.encode(&mut bytes)?;
        w.write_all(&bytes).map_err(ProtocolError::from)
    }

    /// Reads exactly one frame from a blocking byte source (the TCP
    /// transport). Returns `Ok(None)` on a clean end-of-stream at a
    /// frame boundary.
    ///
    /// # Errors
    ///
    /// Fails on mid-frame end-of-stream, I/O errors, oversized lengths
    /// and unknown type bytes.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, ProtocolError> {
        let mut prefix = [0u8; 4];
        let mut filled = 0;
        while filled < prefix.len() {
            let n = r.read(&mut prefix[filled..]).map_err(ProtocolError::from)?;
            if n == 0 {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(ProtocolError::Truncated)
                };
            }
            filled += n;
        }
        let len = u32::from_be_bytes(prefix);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(ProtocolError::TooLarge {
                len: u64::from(len),
            });
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)
            .map_err(|_| ProtocolError::Truncated)?;
        let frame_type =
            FrameType::from_byte(body[0]).ok_or(ProtocolError::UnknownType(body[0]))?;
        Ok(Some(Frame {
            frame_type,
            payload: body[1..].to_vec(),
        }))
    }
}

/// Errors of the frame and payload codecs and the session protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// Transport I/O failed (message carries the rendered `io::Error`).
    Io(String),
    /// A frame's length prefix exceeds [`MAX_FRAME_LEN`] (or is zero).
    TooLarge {
        /// The offending length.
        len: u64,
    },
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The type byte is not a known [`FrameType`].
    UnknownType(u8),
    /// A payload ended before the field being decoded.
    Short,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The payload decoded to a structurally invalid value.
    Malformed(&'static str),
    /// The client presented an unsupported protocol version.
    BadVersion(u8),
    /// A frame arrived in a state that does not accept it (e.g.
    /// `COMPOSE` before `HELLO`).
    OutOfTurn(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::TooLarge { len } => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::UnknownType(b) => write!(f, "unknown frame type byte {b:#04x}"),
            ProtocolError::Short => write!(f, "payload ended before the field being decoded"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (want {PROTOCOL_VERSION})"
                )
            }
            ProtocolError::OutOfTurn(what) => write!(f, "frame out of turn: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        let a = Frame {
            frame_type: FrameType::Compose,
            payload: vec![1, 2, 3],
        };
        let b = Frame::bare(FrameType::Bye);
        a.encode(&mut buf).unwrap();
        b.encode(&mut buf).unwrap();
        assert_eq!(Frame::take(&mut buf).unwrap(), Some(a));
        assert_eq!(Frame::take(&mut buf).unwrap(), Some(b));
        assert_eq!(Frame::take(&mut buf).unwrap(), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut buf = Vec::new();
        Frame {
            frame_type: FrameType::Hello,
            payload: vec![9; 10],
        }
        .encode(&mut buf)
        .unwrap();
        let mut partial = buf[..7].to_vec();
        assert_eq!(Frame::take(&mut partial).unwrap(), None);
        partial.extend_from_slice(&buf[7..]);
        assert!(Frame::take(&mut partial).unwrap().is_some());
    }

    #[test]
    fn unknown_type_and_oversize_are_errors() {
        let mut buf = vec![0, 0, 0, 1, 0xEE];
        assert_eq!(Frame::take(&mut buf), Err(ProtocolError::UnknownType(0xEE)));
        let mut huge = (MAX_FRAME_LEN + 1).to_be_bytes().to_vec();
        huge.push(1);
        assert!(matches!(
            Frame::take(&mut huge),
            Err(ProtocolError::TooLarge { .. })
        ));
    }

    #[test]
    fn blocking_io_roundtrip() {
        let mut bytes = Vec::new();
        let frame = Frame {
            frame_type: FrameType::Completed,
            payload: vec![7; 32],
        };
        frame.write_to(&mut bytes).unwrap();
        let mut reader = &bytes[..];
        assert_eq!(Frame::read_from(&mut reader).unwrap(), Some(frame));
        assert_eq!(Frame::read_from(&mut reader).unwrap(), None);
    }

    #[test]
    fn mid_frame_eof_is_truncated() {
        let mut bytes = Vec::new();
        Frame {
            frame_type: FrameType::Error,
            payload: vec![0; 16],
        }
        .write_to(&mut bytes)
        .unwrap();
        let mut reader = &bytes[..bytes.len() - 3];
        assert_eq!(Frame::read_from(&mut reader), Err(ProtocolError::Truncated));
    }
}
