//! The broker core: admission + batched serving, transport-independent.
//!
//! Both transports drive the same deterministic core: frames come in,
//! [`Broker::submit`] decides admission, [`Broker::tick`] drains the
//! queue batch by batch. A batch is a run of queued sessions whose wire
//! signatures are byte-equal — they ask for the *same* composition, so
//! the broker pays analysis, discovery and QASSA selection **once** per
//! batch (one `compose_with_epoch` under one read-lock acquisition) and
//! executes the shared composition once per session. Every decision is
//! counted through the environment's recorder (`daemon.*` keys), so a
//! `RunReport` shows admission behaviour next to discovery and serving
//! counters.

use std::sync::Arc;

use qasom::{ComposeError, ServeOutcome, SharedEnvironment};
use qasom_obs::{keys, Recorder};

use crate::admission::{AdmissionConfig, AdmissionDecision, AdmissionQueue, QueuedSession};
use crate::frame::{Frame, FrameType, ProtocolError};
use crate::wire::{self, ExecutionSummary};

/// Broker tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokerConfig {
    /// Admission limits (queue capacity, client quota, batch cap).
    pub admission: AdmissionConfig,
}

/// What [`Broker::submit`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// Queued; a response comes out of a later [`Broker::tick`].
    Admitted {
        /// The broker-assigned session id (admission order).
        session_id: u64,
    },
    /// Shed; answer the client with `BUSY` now.
    Shed {
        /// Deterministic back-off hint, in broker ticks.
        retry_after_ticks: u32,
    },
}

/// How one served session ended, ready for response encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionReply {
    /// A typed outcome (completed / busy / rejected).
    Outcome(ServeOutcome),
    /// An infrastructure failure, with the registry epoch at failure.
    Failed {
        /// Registry epoch when the session failed.
        epoch: u64,
        /// Rendered error.
        message: String,
    },
}

/// One finished session: where to send it and what to say.
#[derive(Debug)]
pub struct BrokerResponse {
    /// The connection the session arrived on.
    pub conn_id: u64,
    /// The client's correlation id.
    pub corr_id: u64,
    /// The broker-assigned session id.
    pub session_id: u64,
    /// The outcome to encode.
    pub reply: SessionReply,
}

/// The transport-independent broker core.
pub struct Broker {
    shared: SharedEnvironment,
    recorder: Option<Arc<dyn Recorder>>,
    queue: AdmissionQueue,
    next_session_id: u64,
    ticks: u64,
}

impl Broker {
    /// A broker over a shared environment. The environment's recorder
    /// (if any) receives all `daemon.*` counters.
    pub fn new(shared: SharedEnvironment, config: BrokerConfig) -> Self {
        let recorder = shared.with(|e| e.recorder().cloned());
        Broker {
            shared,
            recorder,
            queue: AdmissionQueue::new(config.admission),
            next_session_id: 0,
            ticks: 0,
        }
    }

    /// The admission limits in force.
    pub fn admission_config(&self) -> AdmissionConfig {
        self.queue.config()
    }

    /// The shared environment the broker serves from.
    pub fn environment(&self) -> &SharedEnvironment {
        &self.shared
    }

    /// Registry epoch right now (for `HELLO_ACK`).
    pub fn epoch(&self) -> u64 {
        self.shared.with(|e| e.epoch())
    }

    /// Sessions currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    fn count(&self, key: &str, delta: u64) {
        if let Some(rec) = &self.recorder {
            rec.incr(key, delta);
        }
    }

    /// The recorder cached from the environment (transports count
    /// frame traffic through it without touching the lock).
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.recorder.as_ref()
    }

    /// Decides admission for one session.
    pub fn submit(
        &mut self,
        conn_id: u64,
        corr_id: u64,
        client: &str,
        request: qasom::UserRequest,
        signature: Vec<u8>,
    ) -> Submission {
        let session_id = self.next_session_id;
        let session = QueuedSession {
            session_id,
            conn_id,
            corr_id,
            client: client.to_owned(),
            request,
            signature,
        };
        match self.queue.offer(session) {
            AdmissionDecision::Admitted => {
                self.next_session_id += 1;
                self.count(keys::DAEMON_ADMITTED, 1);
                Submission::Admitted { session_id }
            }
            AdmissionDecision::QueueFull => {
                self.count(keys::DAEMON_SHED, 1);
                Submission::Shed {
                    retry_after_ticks: self.queue.retry_after_ticks(),
                }
            }
            AdmissionDecision::OverQuota => {
                self.count(keys::DAEMON_QUOTA_DENIALS, 1);
                Submission::Shed {
                    retry_after_ticks: self.queue.retry_after_ticks(),
                }
            }
        }
    }

    /// One scheduling round: drains the whole queue, batch by batch.
    /// Responses come back in deterministic order — batches in queue
    /// order, sessions in admission order within a batch.
    pub fn tick(&mut self) -> Vec<BrokerResponse> {
        self.ticks += 1;
        self.count(keys::DAEMON_TICKS, 1);
        let mut responses = Vec::new();
        while let Some(batch) = self.queue.take_batch() {
            self.serve_batch(batch, &mut responses);
        }
        responses
    }

    /// Serves one shared-signature batch: one compose, n executions.
    fn serve_batch(&mut self, batch: Vec<QueuedSession>, responses: &mut Vec<BrokerResponse>) {
        let n = batch.len() as u64;
        self.count(keys::DAEMON_BATCHES, 1);
        self.count(keys::DAEMON_BATCHED_SESSIONS, n);
        // Same accounting as `SharedEnvironment::serve_session`: each
        // batched session is a serving session; the read lock below is
        // taken once for all of them.
        self.count(keys::SERVING_SESSIONS, n);
        match self.shared.compose_with_epoch(&batch[0].request) {
            Ok((epoch, composition)) => {
                for session in batch {
                    let reply = match self.shared.execute(composition.clone()) {
                        Ok(report) => {
                            self.count(keys::DAEMON_COMPLETED, 1);
                            SessionReply::Outcome(ServeOutcome::Completed(report))
                        }
                        Err(error) => {
                            self.count(keys::DAEMON_FAILED, 1);
                            SessionReply::Failed {
                                epoch,
                                message: error.to_string(),
                            }
                        }
                    };
                    responses.push(BrokerResponse {
                        conn_id: session.conn_id,
                        corr_id: session.corr_id,
                        session_id: session.session_id,
                        reply,
                    });
                }
            }
            Err(ComposeError::Rejected(diags)) => {
                for session in batch {
                    self.count(keys::DAEMON_REJECTED, 1);
                    responses.push(BrokerResponse {
                        conn_id: session.conn_id,
                        corr_id: session.corr_id,
                        session_id: session.session_id,
                        reply: SessionReply::Outcome(ServeOutcome::Rejected(diags.clone())),
                    });
                }
            }
            Err(error) => {
                let epoch = self.shared.with(|e| e.epoch());
                let message = error.to_string();
                for session in batch {
                    self.count(keys::DAEMON_FAILED, 1);
                    responses.push(BrokerResponse {
                        conn_id: session.conn_id,
                        corr_id: session.corr_id,
                        session_id: session.session_id,
                        reply: SessionReply::Failed {
                            epoch,
                            message: message.clone(),
                        },
                    });
                }
            }
        }
    }
}

/// Encodes a session reply as its response frame.
///
/// # Errors
///
/// Fails when a diagnostic or error message exceeds the wire's string
/// width.
pub fn reply_frame(corr_id: u64, reply: &SessionReply) -> Result<Frame, ProtocolError> {
    match reply {
        SessionReply::Outcome(ServeOutcome::Completed(report)) => Ok(Frame {
            frame_type: FrameType::Completed,
            payload: wire::encode_completed(corr_id, ExecutionSummary::from_report(report)),
        }),
        SessionReply::Outcome(ServeOutcome::Busy { retry_after_ticks }) => Ok(Frame {
            frame_type: FrameType::Busy,
            payload: wire::encode_busy(corr_id, *retry_after_ticks),
        }),
        SessionReply::Outcome(ServeOutcome::Rejected(diags)) => Ok(Frame {
            frame_type: FrameType::Rejected,
            payload: wire::encode_rejected(corr_id, diags)?,
        }),
        SessionReply::Failed { epoch, message } => Ok(Frame {
            frame_type: FrameType::Error,
            payload: wire::encode_error(corr_id, *epoch, message)?,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom::{Environment, SessionRequest, UserRequest};
    use qasom_netsim::runtime::SyntheticService;
    use qasom_obs::MemoryRecorder;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::QosModel;
    use qasom_registry::ServiceDescription;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn shared_with_recorder() -> (SharedEnvironment, Arc<MemoryRecorder>) {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 7);
        let recorder = Arc::new(MemoryRecorder::new());
        env.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
        let rt = env.model().property("ResponseTime").unwrap();
        for i in 0..3 {
            let desc =
                ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + f64::from(i));
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
        (SharedEnvironment::new(env), recorder)
    }

    fn request(task: &str) -> UserRequest {
        UserRequest::new(
            UserTask::new(task, TaskNode::activity(Activity::new("a", "d#A"))).unwrap(),
        )
    }

    fn submit(broker: &mut Broker, conn: u64, corr: u64, client: &str, task: &str) -> Submission {
        let req = request(task);
        let sig = wire::encode_request_body(&req).unwrap();
        broker.submit(conn, corr, client, req, sig)
    }

    #[test]
    fn a_batch_composes_once_and_executes_per_session() {
        let (shared, recorder) = shared_with_recorder();
        let mut broker = Broker::new(shared, BrokerConfig::default());
        for i in 0..4 {
            assert!(matches!(
                submit(&mut broker, i, i, "c", "hot"),
                Submission::Admitted { .. }
            ));
        }
        let responses = broker.tick();
        assert_eq!(responses.len(), 4);
        assert!(responses
            .iter()
            .all(|r| matches!(&r.reply, SessionReply::Outcome(ServeOutcome::Completed(_)))));
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::DAEMON_BATCHES), 1);
        assert_eq!(snap.counter(keys::DAEMON_BATCHED_SESSIONS), 4);
        assert_eq!(snap.counter(keys::DAEMON_COMPLETED), 4);
        // One discovery pass for the whole batch.
        assert_eq!(snap.counter(keys::DISCOVERY_INDEXED), 1);
    }

    #[test]
    fn batched_serving_matches_the_library_path_outcome() {
        let (shared, _recorder) = shared_with_recorder();
        let direct = shared
            .serve_session(&SessionRequest::new(request("hot")))
            .unwrap();
        let mut broker = Broker::new(shared, BrokerConfig::default());
        submit(&mut broker, 0, 0, "c", "hot");
        let responses = broker.tick();
        match (&responses[0].reply, direct) {
            (
                SessionReply::Outcome(ServeOutcome::Completed(batched)),
                ServeOutcome::Completed(direct),
            ) => {
                assert_eq!(batched.success, direct.success);
                assert_eq!(batched.invocations.len(), direct.invocations.len());
            }
            other => panic!("expected two completions, got {other:?}"),
        }
    }

    #[test]
    fn shedding_and_quota_are_counted() {
        let (shared, recorder) = shared_with_recorder();
        let mut broker = Broker::new(
            shared,
            BrokerConfig {
                admission: AdmissionConfig {
                    queue_capacity: 2,
                    client_quota: 1,
                    batch_max: 8,
                },
            },
        );
        assert!(matches!(
            submit(&mut broker, 0, 0, "a", "hot"),
            Submission::Admitted { .. }
        ));
        // Same client again: quota.
        assert!(matches!(
            submit(&mut broker, 0, 1, "a", "hot"),
            Submission::Shed { .. }
        ));
        assert!(matches!(
            submit(&mut broker, 1, 2, "b", "hot"),
            Submission::Admitted { .. }
        ));
        // Queue full.
        assert!(matches!(
            submit(&mut broker, 2, 3, "c", "hot"),
            Submission::Shed { .. }
        ));
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::DAEMON_ADMITTED), 2);
        assert_eq!(snap.counter(keys::DAEMON_QUOTA_DENIALS), 1);
        assert_eq!(snap.counter(keys::DAEMON_SHED), 1);
    }

    #[test]
    fn compose_failures_fail_every_session_in_the_batch() {
        let (shared, recorder) = shared_with_recorder();
        let mut broker = Broker::new(shared, BrokerConfig::default());
        // No provider serves d#Nothing.
        submit(&mut broker, 0, 0, "a", "hot");
        let req = UserRequest::new(
            UserTask::new("t", TaskNode::activity(Activity::new("x", "d#Nothing"))).unwrap(),
        );
        let sig = wire::encode_request_body(&req).unwrap();
        broker.submit(1, 1, "b", req.clone(), sig.clone());
        broker.submit(2, 2, "c", req, sig);
        let responses = broker.tick();
        assert_eq!(responses.len(), 3);
        let failed: Vec<_> = responses
            .iter()
            .filter(|r| matches!(r.reply, SessionReply::Failed { .. }))
            .collect();
        assert_eq!(failed.len(), 2);
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::DAEMON_FAILED), 2);
        assert_eq!(snap.counter(keys::DAEMON_COMPLETED), 1);
    }
}
