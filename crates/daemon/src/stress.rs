//! The scripted daemon stress workload behind `qasom-cli daemon-stress`.
//!
//! A fixed, single-threaded script over the loopback transport: a small
//! provider market, a handful of clients hammering a shared "hot"
//! request (exercising the batcher), a rotating bursty client pushing
//! past its quota, a cold request every few rounds (separate batch) and
//! provider churn through [`qasom::RegistryDelta`]. Everything —
//! admission order, batch composition, shed decisions — is a pure
//! function of the [`StressConfig`], so identical configs produce
//! byte-identical [`RunReport`]s; CI `cmp`s two runs.

use std::sync::Arc;

use qasom::{Environment, RegistryDelta, SharedEnvironment, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_obs::report::RunReport;
use qasom_obs::{MemoryRecorder, Recorder};
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

use crate::admission::AdmissionConfig;
use crate::broker::BrokerConfig;
use crate::loopback::LoopbackDaemon;

/// Parameters of the scripted workload.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Seed for the synthetic environment's RNG.
    pub seed: u64,
    /// Scheduling rounds (one `pump` each).
    pub rounds: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Admission limits; the defaults are tight enough that the script
    /// exercises both quota denials and queue shedding.
    pub admission: AdmissionConfig,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            seed: 42,
            rounds: 12,
            clients: 4,
            admission: AdmissionConfig {
                queue_capacity: 6,
                client_quota: 2,
                batch_max: 4,
            },
        }
    }
}

fn market(seed: u64) -> Result<SharedEnvironment, String> {
    let mut builder = OntologyBuilder::new("d");
    builder.concept("A");
    let ontology = builder.build().map_err(|e| e.to_string())?;
    let mut env = Environment::new(QosModel::standard(), ontology, seed);
    let recorder = Arc::new(MemoryRecorder::new());
    env.set_recorder(recorder as Arc<dyn Recorder>);
    let rt = env
        .model()
        .property("ResponseTime")
        .ok_or("the standard model defines ResponseTime")?;
    for i in 0..6 {
        let desc = ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + i as f64);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal));
    }
    Ok(SharedEnvironment::new(env))
}

fn hot_request() -> Result<UserRequest, String> {
    let task = UserTask::new("hot", TaskNode::activity(Activity::new("a", "d#A")))
        .map_err(|e| e.to_string())?;
    Ok(UserRequest::new(task).weight("Delay", 1.0))
}

fn cold_request(k: usize) -> Result<UserRequest, String> {
    let task = UserTask::new(
        format!("cold-{k}"),
        TaskNode::activity(Activity::new("a", "d#A")),
    )
    .map_err(|e| e.to_string())?;
    UserRequest::new(task)
        .constraint("ResponseTime", 1.0, Unit::Seconds)
        .map_err(|e| e.to_string())
}

/// Toggles the `burst` provider through the typed churn API (daemon
/// code never holds a closure over the write lock).
fn toggle_burst(shared: &SharedEnvironment) -> Result<(), String> {
    let existing = shared.with(|e| {
        e.registry()
            .iter()
            .find(|(_, d)| d.name() == "burst")
            .map(|(id, _)| id)
    });
    let delta = match existing {
        Some(id) => RegistryDelta::new().undeploy(id),
        None => {
            let rt = shared
                .with(|e| e.model().property("ResponseTime"))
                .ok_or("the standard model defines ResponseTime")?;
            RegistryDelta::new()
                .deploy_faithful(ServiceDescription::new("burst", "d#A").with_qos(rt, 10.0))
        }
    };
    shared.apply_churn(delta);
    Ok(())
}

/// Runs the scripted workload and returns the final [`RunReport`]
/// (`daemon.*` counters included). Identical configs produce
/// byte-identical reports.
///
/// # Errors
///
/// Fails on internal codec errors (a bug, not a runtime condition) —
/// rendered as strings for the CLI.
pub fn stress_report(config: &StressConfig) -> Result<RunReport, String> {
    let shared = market(config.seed)?;
    let mut daemon = LoopbackDaemon::new(
        shared.clone(),
        BrokerConfig {
            admission: config.admission,
        },
    );

    let clients: Vec<_> = (0..config.clients.max(1))
        .map(|i| {
            let handle = daemon.connect();
            daemon
                .send_hello(handle, &format!("client-{i}"))
                .map_err(|e| e.to_string())?;
            Ok(handle)
        })
        .collect::<Result<_, String>>()?;
    daemon.pump();

    let hot = hot_request()?;
    let mut corr = 0u64;
    for round in 0..config.rounds {
        if round % 3 == 0 {
            toggle_burst(&shared)?;
        }
        for (i, handle) in clients.iter().enumerate() {
            corr += 1;
            daemon
                .send_compose(*handle, corr, &hot)
                .map_err(|e| e.to_string())?;
            // The round's bursty client doubles down past its quota.
            if i == round % clients.len() {
                for _ in 0..2 {
                    corr += 1;
                    daemon
                        .send_compose(*handle, corr, &hot)
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        if round % 4 == 2 {
            if let Some(handle) = clients.first() {
                corr += 1;
                daemon
                    .send_compose(*handle, corr, &cold_request(round % 2)?)
                    .map_err(|e| e.to_string())?;
            }
        }
        daemon.pump();
        for handle in &clients {
            // Drain (and thereby decode-check) every response frame.
            daemon.drain_events(*handle).map_err(|e| e.to_string())?;
        }
    }
    for handle in &clients {
        daemon.send_bye(*handle).map_err(|e| e.to_string())?;
    }
    daemon.pump();

    Ok(shared.with(|e| e.run_report("daemon-stress")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_same_bytes() {
        let config = StressConfig::default();
        let a = stress_report(&config).unwrap().to_pretty_string();
        let b = stress_report(&config).unwrap().to_pretty_string();
        assert_eq!(a, b);
    }

    #[test]
    fn the_script_exercises_batching_and_shedding() {
        let report = stress_report(&StressConfig::default()).unwrap();
        let daemon = report.daemon.expect("daemon section present");
        assert!(daemon.sessions_admitted > 0);
        assert!(daemon.batches > 0);
        // The batcher actually groups: fewer compose passes than
        // sessions.
        assert!(daemon.batches < daemon.sessions_admitted);
        // The bursty client trips its quota; the script is sized so the
        // queue itself never saturates before quotas do.
        assert!(daemon.quota_denials > 0);
        assert_eq!(
            daemon.sessions_admitted,
            daemon.sessions_completed + daemon.sessions_rejected + daemon.sessions_failed
        );
    }
}
