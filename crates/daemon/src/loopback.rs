//! The in-process loopback transport: byte-faithful, single-threaded,
//! deterministic.
//!
//! Loopback "connections" are pairs of byte buffers. Clients append
//! *real encoded frames* ([`crate::frame`]) to their connection's
//! inbound buffer; [`LoopbackDaemon::pump`] decodes them through the
//! same codec the TCP transport uses, drives the session state machines
//! and the broker, and appends encoded response frames to the outbound
//! buffers. One `pump` is one deterministic scheduling round:
//!
//! 1. connections are polled in connection-id order, frames within a
//!    connection in arrival order — so admission order (and therefore
//!    shed order) is a pure function of the submission script;
//! 2. the broker ticks once, draining the queue batch by batch;
//! 3. responses are written back in broker order.
//!
//! Hermetic tests drive this transport; nothing here touches a socket,
//! a clock or a thread.

use std::collections::BTreeMap;

use qasom::SharedEnvironment;
use qasom_obs::keys;

use crate::broker::{reply_frame, Broker, BrokerConfig, SessionReply, Submission};
use crate::frame::{Frame, FrameType, ProtocolError};
use crate::session::{
    decode_client_event, ClientEvent, ConnectionSession, SessionEvent, SessionState,
};
use crate::wire;

struct LoopConn {
    session: ConnectionSession,
    inbound: Vec<u8>,
    outbound: Vec<u8>,
    closed: bool,
}

/// A client handle onto a loopback connection. All operations go
/// through the daemon (single-threaded determinism); the handle only
/// names the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopbackClient {
    conn_id: u64,
}

impl LoopbackClient {
    /// The connection id backing this handle.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }
}

/// The loopback daemon: a broker plus in-memory connections.
pub struct LoopbackDaemon {
    broker: Broker,
    conns: BTreeMap<u64, LoopConn>,
    next_conn: u64,
}

impl LoopbackDaemon {
    /// A daemon serving `shared` under the given broker config.
    pub fn new(shared: SharedEnvironment, config: BrokerConfig) -> Self {
        LoopbackDaemon {
            broker: Broker::new(shared, config),
            conns: BTreeMap::new(),
            next_conn: 0,
        }
    }

    /// The broker core (for inspection in tests and benches).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Opens a connection. The client still has to say `HELLO`.
    pub fn connect(&mut self) -> LoopbackClient {
        let conn_id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            conn_id,
            LoopConn {
                session: ConnectionSession::new(),
                inbound: Vec::new(),
                outbound: Vec::new(),
                closed: false,
            },
        );
        LoopbackClient { conn_id }
    }

    fn conn_mut(&mut self, client: LoopbackClient) -> Result<&mut LoopConn, ProtocolError> {
        self.conns
            .get_mut(&client.conn_id)
            .ok_or(ProtocolError::OutOfTurn("connection does not exist"))
    }

    /// Client side: sends a `HELLO` frame.
    ///
    /// # Errors
    ///
    /// Fails on unknown connections and over-wide client names.
    pub fn send_hello(&mut self, client: LoopbackClient, name: &str) -> Result<(), ProtocolError> {
        let frame = Frame {
            frame_type: FrameType::Hello,
            payload: wire::encode_hello(name)?,
        };
        let conn = self.conn_mut(client)?;
        frame.encode(&mut conn.inbound)
    }

    /// Client side: sends a `COMPOSE` frame.
    ///
    /// # Errors
    ///
    /// Fails on unknown connections and over-wide requests.
    pub fn send_compose(
        &mut self,
        client: LoopbackClient,
        corr_id: u64,
        request: &qasom::UserRequest,
    ) -> Result<(), ProtocolError> {
        let frame = Frame {
            frame_type: FrameType::Compose,
            payload: wire::encode_compose(corr_id, request)?,
        };
        let conn = self.conn_mut(client)?;
        frame.encode(&mut conn.inbound)
    }

    /// Client side: sends a `BYE` frame.
    ///
    /// # Errors
    ///
    /// Fails on unknown connections.
    pub fn send_bye(&mut self, client: LoopbackClient) -> Result<(), ProtocolError> {
        let frame = Frame::bare(FrameType::Bye);
        let conn = self.conn_mut(client)?;
        frame.encode(&mut conn.inbound)
    }

    /// Client side: decodes every response frame buffered on the
    /// connection, in order.
    ///
    /// # Errors
    ///
    /// Fails when the daemon wrote a frame the client codec rejects
    /// (a codec bug, not a runtime condition).
    pub fn drain_events(
        &mut self,
        client: LoopbackClient,
    ) -> Result<Vec<ClientEvent>, ProtocolError> {
        let conn = self.conn_mut(client)?;
        let mut events = Vec::new();
        while let Some(frame) = Frame::take(&mut conn.outbound)? {
            events.push(decode_client_event(&frame)?);
        }
        Ok(events)
    }

    /// One deterministic scheduling round (see the module docs).
    ///
    /// Protocol errors on a connection do not abort the round: the
    /// offender gets an `ERROR` frame (correlation id 0) and is closed;
    /// other connections proceed.
    pub fn pump(&mut self) {
        // Phase 1: poll connections in id order, admitting sessions.
        let conn_ids: Vec<u64> = self.conns.keys().copied().collect();
        for conn_id in conn_ids {
            self.poll_conn(conn_id);
        }
        // Phase 2: one broker tick; respond in broker order.
        let responses = self.broker.tick();
        for response in responses {
            let frame = match reply_frame(response.corr_id, &response.reply) {
                Ok(frame) => frame,
                Err(e) => match encode_error_frame(response.corr_id, 0, &e.to_string()) {
                    Some(frame) => frame,
                    None => continue,
                },
            };
            self.write_frame(response.conn_id, &frame);
        }
        // Closed connections whose buffers are drained can be dropped.
        self.conns
            .retain(|_, c| !(c.closed && c.inbound.is_empty() && c.outbound.is_empty()));
    }

    fn poll_conn(&mut self, conn_id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                return;
            };
            if conn.closed {
                return;
            }
            let frame = match Frame::take(&mut conn.inbound) {
                Ok(Some(frame)) => frame,
                Ok(None) => return,
                Err(e) => {
                    conn.closed = true;
                    let message = e.to_string();
                    self.answer_error(conn_id, &message);
                    return;
                }
            };
            self.count(keys::DAEMON_FRAMES_READ, 1);
            let event = {
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return;
                };
                conn.session.on_frame(&frame)
            };
            match event {
                Ok(SessionEvent::Hello { .. }) => {
                    let ack = wire::HelloAck {
                        epoch: self.broker.epoch(),
                        batch_max: self.broker.admission_config().batch_max as u32,
                    };
                    let frame = Frame {
                        frame_type: FrameType::HelloAck,
                        payload: wire::encode_hello_ack(ack),
                    };
                    self.write_frame(conn_id, &frame);
                }
                Ok(SessionEvent::Submit {
                    corr_id,
                    request,
                    signature,
                }) => {
                    let client = self
                        .conns
                        .get(&conn_id)
                        .and_then(|c| c.session.client())
                        .unwrap_or("")
                        .to_owned();
                    let submission = self
                        .broker
                        .submit(conn_id, corr_id, &client, *request, signature);
                    if let Submission::Shed { retry_after_ticks } = submission {
                        // Shed now, in poll order: Busy ordering is
                        // deterministic in the submission script.
                        let reply =
                            SessionReply::Outcome(qasom::ServeOutcome::Busy { retry_after_ticks });
                        if let Ok(frame) = reply_frame(corr_id, &reply) {
                            self.write_frame(conn_id, &frame);
                        }
                    }
                }
                Ok(SessionEvent::Bye) => {
                    if let Some(conn) = self.conns.get_mut(&conn_id) {
                        conn.closed = true;
                    }
                    return;
                }
                Err(e) => {
                    let message = e.to_string();
                    if let Some(conn) = self.conns.get_mut(&conn_id) {
                        conn.closed = true;
                    }
                    self.answer_error(conn_id, &message);
                    return;
                }
            }
        }
    }

    fn answer_error(&mut self, conn_id: u64, message: &str) {
        let epoch = self.broker.epoch();
        if let Some(frame) = encode_error_frame(0, epoch, message) {
            self.write_frame(conn_id, &frame);
        }
    }

    fn write_frame(&mut self, conn_id: u64, frame: &Frame) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            if frame.encode(&mut conn.outbound).is_ok() {
                self.count(keys::DAEMON_FRAMES_WRITTEN, 1);
            }
        }
    }

    fn count(&self, key: &str, delta: u64) {
        if let Some(rec) = self.broker.recorder() {
            rec.incr(key, delta);
        }
    }
}

fn encode_error_frame(corr_id: u64, epoch: u64, message: &str) -> Option<Frame> {
    wire::encode_error(corr_id, epoch, message)
        .ok()
        .map(|payload| Frame {
            frame_type: FrameType::Error,
            payload,
        })
}

/// Convenience for tests and scripted workloads: is the connection's
/// server-side session closed?
impl LoopbackDaemon {
    /// Whether the connection is closed (said `BYE` or hit a protocol
    /// error) or already dropped.
    pub fn is_closed(&self, client: LoopbackClient) -> bool {
        self.conns
            .get(&client.conn_id)
            .is_none_or(|c| c.closed || c.session.state() == SessionState::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ClientOutcome;
    use qasom::{Environment, UserRequest};
    use qasom_netsim::runtime::SyntheticService;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::QosModel;
    use qasom_registry::ServiceDescription;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn shared() -> SharedEnvironment {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 3);
        let rt = env.model().property("ResponseTime").unwrap();
        for i in 0..3 {
            let desc =
                ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 30.0 + f64::from(i));
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
        SharedEnvironment::new(env)
    }

    fn request() -> UserRequest {
        UserRequest::new(UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap())
    }

    #[test]
    fn hello_compose_bye_roundtrip() {
        let mut d = LoopbackDaemon::new(shared(), BrokerConfig::default());
        let c = d.connect();
        d.send_hello(c, "client-1").unwrap();
        d.send_compose(c, 42, &request()).unwrap();
        d.pump();
        let events = d.drain_events(c).unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], ClientEvent::HelloAck(_)));
        assert!(matches!(
            &events[1],
            ClientEvent::Reply {
                corr_id: 42,
                outcome: ClientOutcome::Completed(s)
            } if s.success
        ));
        d.send_bye(c).unwrap();
        d.pump();
        assert!(d.is_closed(c));
    }

    #[test]
    fn compose_before_hello_gets_an_error_frame() {
        let mut d = LoopbackDaemon::new(shared(), BrokerConfig::default());
        let c = d.connect();
        d.send_compose(c, 1, &request()).unwrap();
        d.pump();
        let events = d.drain_events(c).unwrap();
        assert!(matches!(
            &events[0],
            ClientEvent::Reply {
                corr_id: 0,
                outcome: ClientOutcome::Failed { .. }
            }
        ));
        assert!(d.is_closed(c));
    }
}
