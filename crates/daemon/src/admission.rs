//! Admission control: the bounded session queue, per-client quotas and
//! shared-signature batch extraction.
//!
//! Admission is where the daemon degrades gracefully instead of
//! collapsing: a full queue or an over-quota client yields a typed
//! `Busy` decision with a deterministic retry hint, never an unbounded
//! buffer. All decisions are pure functions of queue state, so a
//! scripted workload replays byte-identically.

use std::collections::{BTreeMap, VecDeque};

use qasom::UserRequest;

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Max sessions waiting in the queue; the `queue_capacity + 1`-th
    /// concurrent session is shed.
    pub queue_capacity: usize,
    /// Max queued sessions per client identity.
    pub client_quota: usize,
    /// Max sessions composed off one shared-signature batch.
    pub batch_max: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 64,
            client_quota: 8,
            batch_max: 8,
        }
    }
}

impl AdmissionConfig {
    fn normalised(mut self) -> Self {
        self.batch_max = self.batch_max.max(1);
        self
    }
}

/// Why a session was (not) admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Queued; a later broker tick serves it.
    Admitted,
    /// Shed: the queue is at capacity.
    QueueFull,
    /// Shed: this client already has `client_quota` sessions queued.
    OverQuota,
}

/// One admitted session waiting to be served.
#[derive(Debug)]
pub struct QueuedSession {
    /// Broker-assigned id, in admission order.
    pub session_id: u64,
    /// The connection the session arrived on.
    pub conn_id: u64,
    /// The client's correlation id for the response frame.
    pub corr_id: u64,
    /// The client identity (quota key).
    pub client: String,
    /// The decoded request.
    pub request: UserRequest,
    /// The request-body bytes; byte-equal signatures batch together.
    pub signature: Vec<u8>,
}

/// The bounded admission queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    queue: VecDeque<QueuedSession>,
    per_client: BTreeMap<String, usize>,
}

impl AdmissionQueue {
    /// An empty queue under the given limits.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionQueue {
            config: config.normalised(),
            queue: VecDeque::new(),
            per_client: BTreeMap::new(),
        }
    }

    /// The limits in force.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Sessions currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The retry hint handed to shed sessions: one tick per batch the
    /// broker must drain before capacity frees up, plus the tick that
    /// re-admits the retrying session itself. Deterministic in the
    /// queue depth.
    ///
    /// The shed session joins the backlog when it retries, so the wait
    /// covers `ceil((len + 1) / batch_max)` batch drains. Counting only
    /// the already-queued sessions under-reported the wait by one tick
    /// whenever the queue divided evenly into batches — exactly the
    /// full-queue case every shed session is in.
    pub fn retry_after_ticks(&self) -> u32 {
        let batches_ahead = (self.queue.len() + 1).div_ceil(self.config.batch_max);
        u32::try_from(1 + batches_ahead).unwrap_or(u32::MAX)
    }

    /// Decides admission for `session`; queues it when admitted.
    pub fn offer(&mut self, session: QueuedSession) -> AdmissionDecision {
        if self.queue.len() >= self.config.queue_capacity {
            return AdmissionDecision::QueueFull;
        }
        let held = self.per_client.get(&session.client).copied().unwrap_or(0);
        if held >= self.config.client_quota {
            return AdmissionDecision::OverQuota;
        }
        *self.per_client.entry(session.client.clone()).or_insert(0) += 1;
        self.queue.push_back(session);
        AdmissionDecision::Admitted
    }

    /// Extracts the next compose batch: the head of the queue plus every
    /// later session with a byte-equal signature, up to `batch_max`,
    /// preserving admission order. Returns `None` on an empty queue.
    pub fn take_batch(&mut self) -> Option<Vec<QueuedSession>> {
        let head = self.queue.pop_front()?;
        let mut batch = Vec::with_capacity(self.config.batch_max);
        let signature = head.signature.clone();
        batch.push(head);
        let mut rest = VecDeque::with_capacity(self.queue.len());
        while let Some(next) = self.queue.pop_front() {
            if batch.len() < self.config.batch_max && next.signature == signature {
                batch.push(next);
            } else {
                rest.push_back(next);
            }
        }
        self.queue = rest;
        for session in &batch {
            if let Some(held) = self.per_client.get_mut(&session.client) {
                *held = held.saturating_sub(1);
                if *held == 0 {
                    self.per_client.remove(&session.client);
                }
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn request(task: &str) -> UserRequest {
        UserRequest::new(
            UserTask::new(task, TaskNode::activity(Activity::new("a", "d#A"))).unwrap(),
        )
    }

    fn session(id: u64, client: &str, task: &str) -> QueuedSession {
        let request = request(task);
        let signature = crate::wire::encode_request_body(&request).unwrap();
        QueuedSession {
            session_id: id,
            conn_id: id,
            corr_id: id,
            client: client.into(),
            request,
            signature,
        }
    }

    fn config(capacity: usize, quota: usize, batch: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: capacity,
            client_quota: quota,
            batch_max: batch,
        }
    }

    #[test]
    fn queue_capacity_sheds_deterministically() {
        let mut q = AdmissionQueue::new(config(2, 10, 4));
        assert_eq!(q.offer(session(1, "c", "t")), AdmissionDecision::Admitted);
        assert_eq!(q.offer(session(2, "c", "t")), AdmissionDecision::Admitted);
        assert_eq!(q.offer(session(3, "c", "t")), AdmissionDecision::QueueFull);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn client_quota_is_per_identity() {
        let mut q = AdmissionQueue::new(config(10, 1, 4));
        assert_eq!(q.offer(session(1, "a", "t")), AdmissionDecision::Admitted);
        assert_eq!(q.offer(session(2, "a", "t")), AdmissionDecision::OverQuota);
        assert_eq!(q.offer(session(3, "b", "t")), AdmissionDecision::Admitted);
        // Serving the batch releases the quota.
        q.take_batch().unwrap();
        assert_eq!(q.offer(session(4, "a", "t")), AdmissionDecision::Admitted);
    }

    #[test]
    fn batches_group_equal_signatures_across_interleavings() {
        let mut q = AdmissionQueue::new(config(10, 10, 8));
        q.offer(session(1, "a", "hot"));
        q.offer(session(2, "b", "cold"));
        q.offer(session(3, "c", "hot"));
        let batch = q.take_batch().unwrap();
        let ids: Vec<u64> = batch.iter().map(|s| s.session_id).collect();
        assert_eq!(ids, vec![1, 3]);
        let next = q.take_batch().unwrap();
        assert_eq!(next[0].session_id, 2);
        assert!(q.take_batch().is_none());
    }

    #[test]
    fn batch_max_caps_the_batch() {
        let mut q = AdmissionQueue::new(config(10, 10, 2));
        for i in 0..5 {
            q.offer(session(i, "c", "hot"));
        }
        assert_eq!(q.take_batch().unwrap().len(), 2);
        assert_eq!(q.take_batch().unwrap().len(), 2);
        assert_eq!(q.take_batch().unwrap().len(), 1);
    }

    #[test]
    fn retry_hint_scales_with_queue_depth() {
        let mut q = AdmissionQueue::new(config(100, 100, 4));
        // Empty queue: the retrier still needs its own batch drained.
        assert_eq!(q.retry_after_ticks(), 2);
        for i in 0..8 {
            q.offer(session(i, "c", "hot"));
        }
        // 8 queued + the retrier = ceil(9/4) = 3 drains, +1 re-admit tick.
        assert_eq!(q.retry_after_ticks(), 4);
    }

    #[test]
    fn retry_hint_counts_the_retrier_at_the_capacity_boundary() {
        // Queue length == queue capacity, dividing evenly into batches:
        // the old hint said ceil(4/2) + 1 = 3 ticks, one short — after 3
        // ticks the retrier is only *entering* the queue, not served.
        let mut q = AdmissionQueue::new(config(4, 100, 2));
        for i in 0..4 {
            assert_eq!(q.offer(session(i, "c", "hot")), AdmissionDecision::Admitted);
        }
        assert_eq!(
            q.offer(session(4, "c", "hot")),
            AdmissionDecision::QueueFull
        );
        assert_eq!(q.retry_after_ticks(), 1 + 5u32.div_ceil(2));
    }
}
