//! `qasom-daemon` — the daemonised serving front-end (`qasomd`).
//!
//! The library behind the `qasomd` binary: a long-running broker that
//! accepts composition sessions over a dependency-free, length-prefixed
//! binary frame protocol and multiplexes them onto one
//! [`qasom::SharedEnvironment`]. The pieces:
//!
//! - [`frame`] — the outer framing codec (`u32` length + type byte);
//! - [`wire`] — payload codecs, including a full-fidelity task-AST
//!   encoding and the batch *signature* (request-body bytes);
//! - [`session`] — the per-connection state machine
//!   (`AwaitingHello → Ready → Closed`) and the client-side decoder;
//! - [`admission`] — the bounded queue, per-client quotas and
//!   shared-signature batch extraction;
//! - [`broker`] — the transport-independent core: admission counters,
//!   ticks, and batched serving (one compose pass per batch, one
//!   execution per session);
//! - [`loopback`] — a byte-faithful in-process transport; hermetic
//!   tests and the scripted stress workload run on it;
//! - [`tcp`] — the real transport: reader/router/writer threads over
//!   TCP sockets;
//! - [`stress`] — the deterministic scripted workload behind
//!   `qasom-cli daemon-stress`.
//!
//! Both transports share every byte of codec, session and broker logic;
//! the loopback transport is not a mock but the same machinery minus
//! sockets and threads, which is what makes its tests meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod broker;
pub mod frame;
pub mod loopback;
pub mod session;
pub mod stress;
pub mod tcp;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionDecision};
pub use broker::{Broker, BrokerConfig, BrokerResponse, SessionReply, Submission};
pub use frame::{Frame, FrameType, ProtocolError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use loopback::{LoopbackClient, LoopbackDaemon};
pub use session::{ClientEvent, ClientOutcome, ConnectionSession, SessionEvent, SessionState};
pub use stress::{stress_report, StressConfig};
pub use tcp::{spawn, TcpDaemonHandle};
