//! The TCP transport: a reader/router/writer split over real sockets.
//!
//! ```text
//!             ┌────────────┐  RouterMsg   ┌────────────┐  Frame   ┌────────────┐
//! socket ───▶ │ reader     │ ───────────▶ │ router     │ ───────▶ │ writer     │ ───▶ socket
//!  (1/conn)   │ thread     │   (mpsc)     │ thread     │  (mpsc)  │ thread     │
//!             └────────────┘              │ + Broker   │ (1/conn) └────────────┘
//!                                         └────────────┘
//! ```
//!
//! Reader threads block on [`Frame::read_from`] and forward decoded
//! frames; the single router thread owns the [`Broker`] and every
//! session state machine, so all admission/batching decisions are made
//! sequentially (the same core the deterministic loopback drives).
//! After draining every message currently queued — the natural batch
//! window: frames that arrived while the broker was busy — the router
//! ticks the broker once and hands responses to the per-connection
//! writer threads. No thread sleeps or polls a clock; everything blocks
//! on channels or sockets.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use qasom::{ServeOutcome, SharedEnvironment};
use qasom_obs::keys;

use crate::broker::{reply_frame, Broker, BrokerConfig, SessionReply, Submission};
use crate::frame::{Frame, FrameType};
use crate::session::{ConnectionSession, SessionEvent};
use crate::wire;

enum RouterMsg {
    Connected { conn_id: u64, writer: Sender<Frame> },
    Inbound { conn_id: u64, frame: Frame },
    Disconnected { conn_id: u64 },
    Shutdown,
}

struct ConnState {
    session: ConnectionSession,
    writer: Sender<Frame>,
}

/// A running TCP daemon; dropping the handle does not stop it — call
/// [`TcpDaemonHandle::stop`].
pub struct TcpDaemonHandle {
    addr: SocketAddr,
    router_tx: Sender<RouterMsg>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    router_thread: Option<JoinHandle<()>>,
}

impl TcpDaemonHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, shuts the router down and joins both threads.
    /// Open client sockets are not force-closed; their reader threads
    /// exit when the peers disconnect.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.router_tx.send(RouterMsg::Shutdown);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.router_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves `shared` until [`TcpDaemonHandle::stop`].
///
/// # Errors
///
/// Fails when the listener cannot bind.
pub fn spawn(
    addr: &str,
    shared: SharedEnvironment,
    config: BrokerConfig,
) -> std::io::Result<TcpDaemonHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (router_tx, router_rx) = mpsc::channel();

    let router_thread = {
        let broker = Broker::new(shared, config);
        std::thread::spawn(move || router_loop(broker, &router_rx))
    };

    let accept_thread = {
        let stop = Arc::clone(&stop);
        let router_tx = router_tx.clone();
        std::thread::spawn(move || {
            let mut next_conn = 0u64;
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_id = next_conn;
                next_conn += 1;
                if spawn_connection(conn_id, stream, &router_tx).is_err() {
                    continue;
                }
            }
        })
    };

    Ok(TcpDaemonHandle {
        addr: local,
        router_tx,
        stop,
        accept_thread: Some(accept_thread),
        router_thread: Some(router_thread),
    })
}

/// Spawns the reader and writer threads for one accepted socket.
fn spawn_connection(
    conn_id: u64,
    stream: TcpStream,
    router_tx: &Sender<RouterMsg>,
) -> std::io::Result<()> {
    let reader_stream = stream.try_clone()?;
    let (writer_tx, writer_rx) = mpsc::channel::<Frame>();
    if router_tx
        .send(RouterMsg::Connected {
            conn_id,
            writer: writer_tx,
        })
        .is_err()
    {
        return Ok(());
    }

    // Writer: drains the frame channel onto the socket; exits when the
    // router drops the sender (disconnect/shutdown) or the write fails.
    let mut writer_stream = stream;
    std::thread::spawn(move || {
        while let Ok(frame) = writer_rx.recv() {
            if frame.write_to(&mut writer_stream).is_err() {
                break;
            }
        }
        let _ = writer_stream.shutdown(std::net::Shutdown::Both);
    });

    // Reader: blocks on frames, forwards them to the router.
    let router_tx = router_tx.clone();
    let mut reader = reader_stream;
    std::thread::spawn(move || loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => {
                if router_tx
                    .send(RouterMsg::Inbound { conn_id, frame })
                    .is_err()
                {
                    break;
                }
            }
            Ok(None) | Err(_) => {
                let _ = router_tx.send(RouterMsg::Disconnected { conn_id });
                break;
            }
        }
    });
    Ok(())
}

fn router_loop(mut broker: Broker, rx: &Receiver<RouterMsg>) {
    let mut conns: std::collections::BTreeMap<u64, ConnState> = std::collections::BTreeMap::new();
    'serve: loop {
        // Block for the first message, then drain whatever else arrived
        // while the broker was busy — that backlog is the batch window.
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break,
        };
        let mut backlog = vec![first];
        while let Ok(msg) = rx.try_recv() {
            backlog.push(msg);
        }
        for msg in backlog {
            match msg {
                RouterMsg::Connected { conn_id, writer } => {
                    conns.insert(
                        conn_id,
                        ConnState {
                            session: ConnectionSession::new(),
                            writer,
                        },
                    );
                }
                RouterMsg::Inbound { conn_id, frame } => {
                    count(&broker, keys::DAEMON_FRAMES_READ, 1);
                    handle_frame(&mut broker, &mut conns, conn_id, &frame);
                }
                RouterMsg::Disconnected { conn_id } => {
                    conns.remove(&conn_id);
                }
                RouterMsg::Shutdown => break 'serve,
            }
        }
        for response in broker.tick() {
            if let Ok(frame) = reply_frame(response.corr_id, &response.reply) {
                send(&broker, &conns, response.conn_id, frame);
            }
        }
    }
}

fn handle_frame(
    broker: &mut Broker,
    conns: &mut std::collections::BTreeMap<u64, ConnState>,
    conn_id: u64,
    frame: &Frame,
) {
    let Some(state) = conns.get_mut(&conn_id) else {
        return;
    };
    match state.session.on_frame(frame) {
        Ok(SessionEvent::Hello { .. }) => {
            let ack = wire::HelloAck {
                epoch: broker.epoch(),
                batch_max: broker.admission_config().batch_max as u32,
            };
            let frame = Frame {
                frame_type: FrameType::HelloAck,
                payload: wire::encode_hello_ack(ack),
            };
            send(broker, conns, conn_id, frame);
        }
        Ok(SessionEvent::Submit {
            corr_id,
            request,
            signature,
        }) => {
            let client = state.session.client().unwrap_or("").to_owned();
            let submission = broker.submit(conn_id, corr_id, &client, *request, signature);
            if let Submission::Shed { retry_after_ticks } = submission {
                let reply = SessionReply::Outcome(ServeOutcome::Busy { retry_after_ticks });
                if let Ok(frame) = reply_frame(corr_id, &reply) {
                    send(broker, conns, conn_id, frame);
                }
            }
        }
        Ok(SessionEvent::Bye) => {
            conns.remove(&conn_id);
        }
        Err(e) => {
            let epoch = broker.epoch();
            if let Ok(payload) = wire::encode_error(0, epoch, &e.to_string()) {
                let frame = Frame {
                    frame_type: FrameType::Error,
                    payload,
                };
                send(broker, conns, conn_id, frame);
            }
            conns.remove(&conn_id);
        }
    }
}

fn send(
    broker: &Broker,
    conns: &std::collections::BTreeMap<u64, ConnState>,
    conn_id: u64,
    frame: Frame,
) {
    if let Some(state) = conns.get(&conn_id) {
        if state.writer.send(frame).is_ok() {
            count(broker, keys::DAEMON_FRAMES_WRITTEN, 1);
        }
    }
}

fn count(broker: &Broker, key: &str, delta: u64) {
    if let Some(rec) = broker.recorder() {
        rec.incr(key, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{decode_client_event, ClientEvent, ClientOutcome};
    use qasom::{Environment, UserRequest};
    use qasom_netsim::runtime::SyntheticService;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::QosModel;
    use qasom_registry::ServiceDescription;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn shared() -> SharedEnvironment {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 11);
        let rt = env.model().property("ResponseTime").unwrap();
        for i in 0..3 {
            let desc =
                ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 25.0 + f64::from(i));
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
        SharedEnvironment::new(env)
    }

    #[test]
    fn sessions_roundtrip_over_a_real_socket() {
        let handle = spawn("127.0.0.1:0", shared(), BrokerConfig::default()).unwrap();
        let mut client = TcpStream::connect(handle.addr()).unwrap();

        Frame {
            frame_type: FrameType::Hello,
            payload: wire::encode_hello("tcp-test").unwrap(),
        }
        .write_to(&mut client)
        .unwrap();
        let ack = Frame::read_from(&mut client).unwrap().unwrap();
        assert!(matches!(
            decode_client_event(&ack).unwrap(),
            ClientEvent::HelloAck(_)
        ));

        let request = UserRequest::new(
            UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap(),
        );
        Frame {
            frame_type: FrameType::Compose,
            payload: wire::encode_compose(9, &request).unwrap(),
        }
        .write_to(&mut client)
        .unwrap();
        let reply = Frame::read_from(&mut client).unwrap().unwrap();
        match decode_client_event(&reply).unwrap() {
            ClientEvent::Reply {
                corr_id: 9,
                outcome: ClientOutcome::Completed(summary),
            } => assert!(summary.success),
            other => panic!("expected completion, got {other:?}"),
        }

        Frame::bare(FrameType::Bye).write_to(&mut client).unwrap();
        drop(client);
        handle.stop();
    }
}
