//! Payload codecs for the `qasomd` protocol.
//!
//! Encodings are fixed and dependency-free:
//!
//! * integers — big-endian (`u8`/`u16`/`u32`/`u64`);
//! * `f64` — IEEE-754 bits as a big-endian `u64` (bit-exact, so a
//!   decoded request re-encodes to the same bytes);
//! * strings — `u16` byte length + UTF-8 bytes;
//! * QoS units — their canonical textual form ([`Unit`]'s `Display` /
//!   `FromStr` pair);
//! * task ASTs — a recursive tag-prefixed encoding with full fidelity
//!   (sequence/parallel/choice/loop structure survives the wire).
//!
//! The request-body encoding doubles as the **batch signature**: two
//! sessions whose encoded bodies are byte-equal ask for the same
//! composition, so the broker pays discovery/selection once for both.

use qasom::UserRequest;
use qasom_analysis::Diagnostic;
use qasom_qos::Unit;
use qasom_selection::AggregationApproach;
use qasom_task::{Activity, LoopBound, TaskNode, UserTask};

use crate::frame::ProtocolError;

// ---------------------------------------------------------------------
// Primitives.

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    let len = u16::try_from(s.len()).map_err(|_| ProtocolError::Malformed("string over 64 KiB"))?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], ProtocolError> {
    if buf.len() < n {
        return Err(ProtocolError::Short);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub(crate) fn get_u8(buf: &mut &[u8]) -> Result<u8, ProtocolError> {
    Ok(take(buf, 1)?[0])
}

pub(crate) fn get_u16(buf: &mut &[u8]) -> Result<u16, ProtocolError> {
    let b = take(buf, 2)?;
    Ok(u16::from_be_bytes([b[0], b[1]]))
}

pub(crate) fn get_u32(buf: &mut &[u8]) -> Result<u32, ProtocolError> {
    let b = take(buf, 4)?;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

pub(crate) fn get_u64(buf: &mut &[u8]) -> Result<u64, ProtocolError> {
    let b = take(buf, 8)?;
    Ok(u64::from_be_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

pub(crate) fn get_f64(buf: &mut &[u8]) -> Result<f64, ProtocolError> {
    Ok(f64::from_bits(get_u64(buf)?))
}

pub(crate) fn get_str(buf: &mut &[u8]) -> Result<String, ProtocolError> {
    let len = get_u16(buf)? as usize;
    let bytes = take(buf, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
}

/// Asserts the whole payload was consumed (trailing garbage is a
/// protocol error, not silently ignored — it would desynchronise the
/// batch signature).
fn finish(buf: &[u8]) -> Result<(), ProtocolError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(ProtocolError::Malformed("trailing bytes in payload"))
    }
}

// ---------------------------------------------------------------------
// Task AST.

const TAG_ACTIVITY: u8 = 0;
const TAG_SEQUENCE: u8 = 1;
const TAG_PARALLEL: u8 = 2;
const TAG_CHOICE: u8 = 3;
const TAG_LOOP: u8 = 4;

fn put_activity(out: &mut Vec<u8>, a: &Activity) -> Result<(), ProtocolError> {
    put_str(out, a.name())?;
    put_str(out, &a.function().to_string())?;
    let narrow = |n: usize| u8::try_from(n).map_err(|_| ProtocolError::Malformed("over 255 IRIs"));
    put_u8(out, narrow(a.inputs().len())?);
    for iri in a.inputs() {
        put_str(out, &iri.to_string())?;
    }
    put_u8(out, narrow(a.outputs().len())?);
    for iri in a.outputs() {
        put_str(out, &iri.to_string())?;
    }
    Ok(())
}

fn get_activity(buf: &mut &[u8]) -> Result<Activity, ProtocolError> {
    let name = get_str(buf)?;
    let function = get_str(buf)?;
    let mut activity = Activity::new(name, &function);
    for _ in 0..get_u8(buf)? {
        activity = activity.with_input(&get_str(buf)?);
    }
    for _ in 0..get_u8(buf)? {
        activity = activity.with_output(&get_str(buf)?);
    }
    Ok(activity)
}

fn put_node(out: &mut Vec<u8>, node: &TaskNode) -> Result<(), ProtocolError> {
    let count = |n: usize| u16::try_from(n).map_err(|_| ProtocolError::Malformed("task too wide"));
    match node {
        TaskNode::Activity(a) => {
            put_u8(out, TAG_ACTIVITY);
            put_activity(out, a)?;
        }
        TaskNode::Sequence(children) | TaskNode::Parallel(children) => {
            let tag = if matches!(node, TaskNode::Sequence(_)) {
                TAG_SEQUENCE
            } else {
                TAG_PARALLEL
            };
            put_u8(out, tag);
            put_u16(out, count(children.len())?);
            for c in children {
                put_node(out, c)?;
            }
        }
        TaskNode::Choice(branches) => {
            put_u8(out, TAG_CHOICE);
            put_u16(out, count(branches.len())?);
            for (p, c) in branches {
                put_f64(out, *p);
                put_node(out, c)?;
            }
        }
        TaskNode::Loop { body, bound } => {
            put_u8(out, TAG_LOOP);
            put_f64(out, bound.expected());
            put_u32(out, bound.max());
            put_node(out, body)?;
        }
    }
    Ok(())
}

fn get_node(buf: &mut &[u8], depth: u32) -> Result<TaskNode, ProtocolError> {
    if depth > 64 {
        return Err(ProtocolError::Malformed("task nested over 64 levels"));
    }
    let tag = get_u8(buf)?;
    match tag {
        TAG_ACTIVITY => Ok(TaskNode::Activity(get_activity(buf)?)),
        TAG_SEQUENCE | TAG_PARALLEL => {
            let n = get_u16(buf)? as usize;
            let mut children = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                children.push(get_node(buf, depth + 1)?);
            }
            Ok(if tag == TAG_SEQUENCE {
                TaskNode::Sequence(children)
            } else {
                TaskNode::Parallel(children)
            })
        }
        TAG_CHOICE => {
            let n = get_u16(buf)? as usize;
            let mut branches = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let p = get_f64(buf)?;
                branches.push((p, get_node(buf, depth + 1)?));
            }
            Ok(TaskNode::Choice(branches))
        }
        TAG_LOOP => {
            let expected = get_f64(buf)?;
            let max = get_u32(buf)?;
            if !(expected.is_finite() && expected >= 0.0) || max == 0 {
                return Err(ProtocolError::Malformed("invalid loop bound"));
            }
            let body = get_node(buf, depth + 1)?;
            Ok(TaskNode::repeat(body, LoopBound::new(expected, max)))
        }
        _ => Err(ProtocolError::Malformed("unknown task node tag")),
    }
}

// ---------------------------------------------------------------------
// Request body (the batch signature).

fn approach_byte(a: AggregationApproach) -> u8 {
    match a {
        AggregationApproach::Pessimistic => 0,
        AggregationApproach::Optimistic => 1,
        AggregationApproach::MeanValue => 2,
    }
}

fn approach_from(byte: u8) -> Result<AggregationApproach, ProtocolError> {
    match byte {
        0 => Ok(AggregationApproach::Pessimistic),
        1 => Ok(AggregationApproach::Optimistic),
        2 => Ok(AggregationApproach::MeanValue),
        _ => Err(ProtocolError::Malformed("unknown aggregation approach")),
    }
}

/// Encodes a full [`UserRequest`] (task AST, constraints, weights,
/// aggregation approach). Byte-equal encodings ⇔ identical requests, so
/// this doubles as the batch signature.
///
/// # Errors
///
/// Fails on over-wide structures (strings over 64 KiB, >65535 children
/// or constraints).
pub fn encode_request_body(request: &UserRequest) -> Result<Vec<u8>, ProtocolError> {
    let mut out = Vec::new();
    put_str(&mut out, request.task().name())?;
    put_node(&mut out, request.task().root())?;
    let count =
        |n: usize| u16::try_from(n).map_err(|_| ProtocolError::Malformed("too many QoS terms"));
    put_u16(&mut out, count(request.raw_constraints().len())?);
    for (name, bound, unit) in request.raw_constraints() {
        put_str(&mut out, name)?;
        put_f64(&mut out, *bound);
        put_str(&mut out, &unit.to_string())?;
    }
    put_u16(&mut out, count(request.raw_weights().len())?);
    for (name, weight) in request.raw_weights() {
        put_str(&mut out, name)?;
        put_f64(&mut out, *weight);
    }
    put_u8(&mut out, approach_byte(request.aggregation_approach()));
    Ok(out)
}

fn get_request_body(buf: &mut &[u8]) -> Result<UserRequest, ProtocolError> {
    let task_name = get_str(buf)?;
    let root = get_node(buf, 0)?;
    let task = UserTask::new(task_name, root)
        .map_err(|_| ProtocolError::Malformed("task failed validation"))?;
    let mut request = UserRequest::new(task);
    for _ in 0..get_u16(buf)? {
        let name = get_str(buf)?;
        let bound = get_f64(buf)?;
        let unit: Unit = get_str(buf)?
            .parse()
            .map_err(|_| ProtocolError::Malformed("unknown QoS unit"))?;
        request = request
            .constraint(name, bound, unit)
            .map_err(|_| ProtocolError::Malformed("invalid constraint"))?;
    }
    for _ in 0..get_u16(buf)? {
        let name = get_str(buf)?;
        let weight = get_f64(buf)?;
        request = request.weight(name, weight);
    }
    request = request.approach(approach_from(get_u8(buf)?)?);
    Ok(request)
}

// ---------------------------------------------------------------------
// Frame payloads.

/// `HELLO`: protocol version + client name.
pub fn encode_hello(client: &str) -> Result<Vec<u8>, ProtocolError> {
    let mut out = Vec::new();
    put_u8(&mut out, crate::frame::PROTOCOL_VERSION);
    put_str(&mut out, client)?;
    Ok(out)
}

/// Decodes `HELLO`, checking the protocol version.
///
/// # Errors
///
/// Fails on a version mismatch or a malformed payload.
pub fn decode_hello(payload: &[u8]) -> Result<String, ProtocolError> {
    let mut buf = payload;
    let version = get_u8(&mut buf)?;
    if version != crate::frame::PROTOCOL_VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let client = get_str(&mut buf)?;
    finish(buf)?;
    Ok(client)
}

/// What `HELLO_ACK` tells a client about the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// Registry epoch at handshake time.
    pub epoch: u64,
    /// The broker's compose-batch cap.
    pub batch_max: u32,
}

/// Encodes `HELLO_ACK`.
pub fn encode_hello_ack(ack: HelloAck) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, ack.epoch);
    put_u32(&mut out, ack.batch_max);
    out
}

/// Decodes `HELLO_ACK`.
///
/// # Errors
///
/// Fails on a malformed payload.
pub fn decode_hello_ack(payload: &[u8]) -> Result<HelloAck, ProtocolError> {
    let mut buf = payload;
    let ack = HelloAck {
        epoch: get_u64(&mut buf)?,
        batch_max: get_u32(&mut buf)?,
    };
    finish(buf)?;
    Ok(ack)
}

/// `COMPOSE`: correlation id + request body.
///
/// # Errors
///
/// Fails when the request is too wide for the wire format.
pub fn encode_compose(corr_id: u64, request: &UserRequest) -> Result<Vec<u8>, ProtocolError> {
    let mut out = Vec::new();
    put_u64(&mut out, corr_id);
    out.extend_from_slice(&encode_request_body(request)?);
    Ok(out)
}

/// Decodes `COMPOSE` into the correlation id, the re-validated request,
/// and the request-body bytes (the batch signature).
///
/// # Errors
///
/// Fails on malformed payloads and on tasks that do not pass
/// [`UserTask::new`] validation.
pub fn decode_compose(payload: &[u8]) -> Result<(u64, UserRequest, Vec<u8>), ProtocolError> {
    let mut buf = payload;
    let corr_id = get_u64(&mut buf)?;
    let body = buf.to_vec();
    let request = get_request_body(&mut buf)?;
    finish(buf)?;
    Ok((corr_id, request, body))
}

/// The compact execution summary a `COMPLETED` frame carries (the full
/// [`qasom::ExecutionReport`] stays on the daemon side; clients get the
/// decision-relevant digest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionSummary {
    /// Whether the composition delivered within its constraints.
    pub success: bool,
    /// Activity invocations performed.
    pub invocations: u32,
    /// Invocations that failed (and triggered substitution).
    pub failures: u32,
    /// Service substitutions performed.
    pub substitutions: u32,
    /// Behavioural adaptations performed.
    pub behavioural_adaptations: u32,
    /// Constraint violations observed or predicted.
    pub violations: u32,
}

impl ExecutionSummary {
    /// Digests a full execution report.
    pub fn from_report(report: &qasom::ExecutionReport) -> Self {
        let clamp = |n: usize| u32::try_from(n).unwrap_or(u32::MAX);
        ExecutionSummary {
            success: report.success,
            invocations: clamp(report.invocations.len()),
            failures: clamp(
                report
                    .invocations
                    .iter()
                    .filter(|r| r.qos.is_none())
                    .count(),
            ),
            substitutions: clamp(report.substitutions),
            behavioural_adaptations: clamp(report.behavioural_adaptations),
            violations: clamp(report.violations.len()),
        }
    }
}

/// `COMPLETED`: correlation id + execution summary.
pub fn encode_completed(corr_id: u64, summary: ExecutionSummary) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, corr_id);
    put_u8(&mut out, u8::from(summary.success));
    put_u32(&mut out, summary.invocations);
    put_u32(&mut out, summary.failures);
    put_u32(&mut out, summary.substitutions);
    put_u32(&mut out, summary.behavioural_adaptations);
    put_u32(&mut out, summary.violations);
    out
}

/// Decodes `COMPLETED`.
///
/// # Errors
///
/// Fails on a malformed payload.
pub fn decode_completed(payload: &[u8]) -> Result<(u64, ExecutionSummary), ProtocolError> {
    let mut buf = payload;
    let corr_id = get_u64(&mut buf)?;
    let summary = ExecutionSummary {
        success: get_u8(&mut buf)? != 0,
        invocations: get_u32(&mut buf)?,
        failures: get_u32(&mut buf)?,
        substitutions: get_u32(&mut buf)?,
        behavioural_adaptations: get_u32(&mut buf)?,
        violations: get_u32(&mut buf)?,
    };
    finish(buf)?;
    Ok((corr_id, summary))
}

/// `BUSY`: correlation id + deterministic retry hint.
pub fn encode_busy(corr_id: u64, retry_after_ticks: u32) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, corr_id);
    put_u32(&mut out, retry_after_ticks);
    out
}

/// Decodes `BUSY`.
///
/// # Errors
///
/// Fails on a malformed payload.
pub fn decode_busy(payload: &[u8]) -> Result<(u64, u32), ProtocolError> {
    let mut buf = payload;
    let corr_id = get_u64(&mut buf)?;
    let ticks = get_u32(&mut buf)?;
    finish(buf)?;
    Ok((corr_id, ticks))
}

/// A diagnostic as carried by a `REJECTED` frame: the stable code, the
/// severity and the message, all textual (clients need not know the
/// analyzer's enum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Stable `QA0xx` code.
    pub code: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// Human-readable explanation.
    pub message: String,
}

impl WireDiagnostic {
    /// Projects an analyzer diagnostic onto the wire shape.
    pub fn from_diagnostic(d: &Diagnostic) -> Self {
        WireDiagnostic {
            code: d.code.code().to_owned(),
            severity: d.severity.to_string(),
            message: d.message.clone(),
        }
    }
}

/// `REJECTED`: correlation id + analyzer diagnostics.
///
/// # Errors
///
/// Fails when a diagnostic message exceeds the string width.
pub fn encode_rejected(corr_id: u64, diags: &[Diagnostic]) -> Result<Vec<u8>, ProtocolError> {
    let mut out = Vec::new();
    put_u64(&mut out, corr_id);
    let n =
        u16::try_from(diags.len()).map_err(|_| ProtocolError::Malformed("too many diagnostics"))?;
    put_u16(&mut out, n);
    for d in diags {
        let wd = WireDiagnostic::from_diagnostic(d);
        put_str(&mut out, &wd.code)?;
        put_str(&mut out, &wd.severity)?;
        put_str(&mut out, &wd.message)?;
    }
    Ok(out)
}

/// Decodes `REJECTED`.
///
/// # Errors
///
/// Fails on a malformed payload.
pub fn decode_rejected(payload: &[u8]) -> Result<(u64, Vec<WireDiagnostic>), ProtocolError> {
    let mut buf = payload;
    let corr_id = get_u64(&mut buf)?;
    let n = get_u16(&mut buf)? as usize;
    let mut diags = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        diags.push(WireDiagnostic {
            code: get_str(&mut buf)?,
            severity: get_str(&mut buf)?,
            message: get_str(&mut buf)?,
        });
    }
    finish(buf)?;
    Ok((corr_id, diags))
}

/// `ERROR`: correlation id + registry epoch at failure + message.
/// Correlation id 0 marks a connection-level protocol error.
///
/// # Errors
///
/// Fails when the message exceeds the string width.
pub fn encode_error(corr_id: u64, epoch: u64, message: &str) -> Result<Vec<u8>, ProtocolError> {
    let mut out = Vec::new();
    put_u64(&mut out, corr_id);
    put_u64(&mut out, epoch);
    let mut msg = message.to_owned();
    msg.truncate(4096);
    put_str(&mut out, &msg)?;
    Ok(out)
}

/// Decodes `ERROR` into `(corr_id, epoch, message)`.
///
/// # Errors
///
/// Fails on a malformed payload.
pub fn decode_error(payload: &[u8]) -> Result<(u64, u64, String), ProtocolError> {
    let mut buf = payload;
    let corr_id = get_u64(&mut buf)?;
    let epoch = get_u64(&mut buf)?;
    let message = get_str(&mut buf)?;
    finish(buf)?;
    Ok((corr_id, epoch, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_task::LoopBound;

    fn deep_request() -> UserRequest {
        let node = TaskNode::sequence([
            TaskNode::activity(
                Activity::new("a", "d#A")
                    .with_input("d#In")
                    .with_output("d#Out"),
            ),
            TaskNode::parallel([
                TaskNode::activity(Activity::new("b", "d#B")),
                TaskNode::choice([
                    (0.25, TaskNode::activity(Activity::new("c", "d#C"))),
                    (0.75, TaskNode::activity(Activity::new("e", "d#E"))),
                ]),
            ]),
            TaskNode::repeat(
                TaskNode::activity(Activity::new("f", "d#F")),
                LoopBound::new(2.5, 4),
            ),
        ]);
        UserRequest::new(UserTask::new("deep", node).unwrap())
            .constraint("ResponseTime", 1.5, Unit::Seconds)
            .unwrap()
            .weight("Availability", 2.0)
            .approach(AggregationApproach::Pessimistic)
    }

    #[test]
    fn requests_roundtrip_with_full_ast_fidelity() {
        let request = deep_request();
        let payload = encode_compose(77, &request).unwrap();
        let (corr, decoded, signature) = decode_compose(&payload).unwrap();
        assert_eq!(corr, 77);
        assert_eq!(decoded.task(), request.task());
        assert_eq!(decoded.raw_constraints(), request.raw_constraints());
        assert_eq!(decoded.raw_weights(), request.raw_weights());
        assert_eq!(
            decoded.aggregation_approach(),
            request.aggregation_approach()
        );
        // The signature is stable under re-encoding: a relayed request
        // batches with the original.
        assert_eq!(encode_request_body(&decoded).unwrap(), signature);
    }

    #[test]
    fn signatures_differ_when_requests_differ() {
        let a = encode_request_body(&deep_request()).unwrap();
        let b = encode_request_body(&deep_request().weight("ResponseTime", 1.0)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn hello_roundtrip_checks_version() {
        let payload = encode_hello("sensor-7").unwrap();
        assert_eq!(decode_hello(&payload).unwrap(), "sensor-7");
        let mut bad = payload.clone();
        bad[0] = 99;
        assert_eq!(decode_hello(&bad), Err(ProtocolError::BadVersion(99)));
    }

    #[test]
    fn outcome_payloads_roundtrip() {
        let ack = HelloAck {
            epoch: 12,
            batch_max: 8,
        };
        assert_eq!(decode_hello_ack(&encode_hello_ack(ack)).unwrap(), ack);

        let summary = ExecutionSummary {
            success: true,
            invocations: 5,
            failures: 1,
            substitutions: 1,
            behavioural_adaptations: 0,
            violations: 2,
        };
        assert_eq!(
            decode_completed(&encode_completed(3, summary)).unwrap(),
            (3, summary)
        );
        assert_eq!(decode_busy(&encode_busy(4, 2)).unwrap(), (4, 2));
        let (corr, epoch, msg) = decode_error(&encode_error(5, 9, "boom").unwrap()).unwrap();
        assert_eq!((corr, epoch, msg.as_str()), (5, 9, "boom"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_busy(1, 1);
        payload.push(0);
        assert_eq!(
            decode_busy(&payload),
            Err(ProtocolError::Malformed("trailing bytes in payload"))
        );
    }

    #[test]
    fn invalid_tasks_fail_decode_validation() {
        // An empty sequence is structurally encodable but must fail
        // UserTask re-validation on the daemon side.
        let mut out = Vec::new();
        put_u64(&mut out, 1);
        put_str(&mut out, "bad").unwrap();
        put_u8(&mut out, 1); // TAG_SEQUENCE
        put_u16(&mut out, 0); // no children
        put_u16(&mut out, 0); // constraints
        put_u16(&mut out, 0); // weights
        put_u8(&mut out, 2); // MeanValue
        assert!(matches!(
            decode_compose(&out),
            Err(ProtocolError::Malformed("task failed validation"))
        ));
    }
}
