//! The `Recorder` seam and its two standard implementations.
//!
//! Instrumented code never decides *how* telemetry is stored — it calls
//! one of three verbs on a `&dyn Recorder`:
//!
//! * [`Recorder::incr`] — bump a named monotone counter,
//! * [`Recorder::observe`] — add a sample to a named fixed-bucket
//!   histogram,
//! * [`Recorder::span`] — record a named interval keyed on **logical or
//!   simulated time supplied by the caller** (activity counts, netsim
//!   microseconds). Wall-clock time never enters this crate, which is
//!   what lets `qasom-lint`'s determinism rules cover it.
//!
//! Producers carry `Option<&dyn Recorder>`: the `None` path is a single
//! predictable branch, performs no allocation and no locking — that is
//! the "compiles to nothing when disabled" contract. [`NoopRecorder`]
//! exists for call sites that want a value rather than an `Option`.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use crate::json::JsonValue;

/// Default histogram bounds, in (simulated) milliseconds: a 1-2.5-5
/// ladder wide enough for both per-provider RTTs and end-to-end phase
/// durations. An implicit overflow bucket catches everything above.
pub const DEFAULT_BUCKETS_MS: [f64; 12] = [
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
];

/// The instrumentation trait the pipeline is written against.
///
/// `Debug` is a supertrait so producers holding an
/// `Option<&dyn Recorder>` can keep deriving `Debug` themselves.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Adds `delta` to the counter `name` (creating it at zero).
    fn incr(&self, name: &str, delta: u64);

    /// Adds one sample to the histogram `name`.
    fn observe(&self, name: &str, value: f64);

    /// Records the interval `[start, end]` for the span `name`. The
    /// unit is whatever logical clock the caller uses (simulated
    /// microseconds for netsim, evaluation counts for selection) —
    /// never wall-clock time.
    fn span(&self, name: &str, start: u64, end: u64);

    /// Whether this recorder retains anything. Producers may skip
    /// building expensive labels when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// A point-in-time copy of everything recorded so far, if this
    /// implementation retains data ([`MemoryRecorder`] does; the no-op
    /// recorder returns `None`).
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// A recorder that drops everything. [`Recorder::enabled`] is `false`,
/// so instrumented code can skip work before even calling in.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn incr(&self, _name: &str, _delta: u64) {}
    #[inline]
    fn observe(&self, _name: &str, _value: f64) {}
    #[inline]
    fn span(&self, _name: &str, _start: u64, _end: u64) {}
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A fixed-bucket histogram (Prometheus-style cumulative-free layout:
/// `counts[i]` is the number of samples `<= bounds[i]`, with one
/// overflow bucket at the end).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds (plus an
    /// implicit overflow bucket).
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Serialises the histogram with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        let buckets = self
            .bounds
            .iter()
            .map(|b| JsonValue::from(*b))
            .chain(std::iter::once(JsonValue::Null))
            .zip(self.counts.iter())
            .map(|(le, n)| JsonValue::object().field("le", le).field("count", *n))
            .collect::<Vec<_>>();
        JsonValue::object()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("min", if self.count == 0 { 0.0 } else { self.min })
            .field("max", if self.count == 0 { 0.0 } else { self.max })
            .field("buckets", buckets)
    }
}

/// One recorded span: a named interval on the caller's logical clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (dotted, like counter names).
    pub name: String,
    /// Interval start on the caller's logical clock.
    pub start: u64,
    /// Interval end (`>= start` by convention, not enforced).
    pub end: u64,
}

impl SpanRecord {
    /// Interval length (saturating, so malformed spans read as 0).
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Serialises the span with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("name", self.name.as_str())
            .field("start", self.start)
            .field("end", self.end)
    }
}

/// Everything a [`MemoryRecorder`] has accumulated, in deterministic
/// order: counters and histograms sorted by name (`BTreeMap`), spans in
/// emission order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Fixed-bucket histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Spans in the order they were recorded.
    pub spans: Vec<SpanRecord>,
}

impl MetricsSnapshot {
    /// Counter value, defaulting to 0 when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serialises the snapshot with a stable field order (counters and
    /// histograms alphabetical, spans in emission order).
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for (name, value) in &self.counters {
            counters = counters.field(name, *value);
        }
        let mut histograms = JsonValue::object();
        for (name, hist) in &self.histograms {
            histograms = histograms.field(name, hist.to_json());
        }
        let spans = self
            .spans
            .iter()
            .map(SpanRecord::to_json)
            .collect::<Vec<_>>();
        JsonValue::object()
            .field("counters", counters)
            .field("histograms", histograms)
            .field("spans", spans)
    }
}

/// An in-memory [`Recorder`] suitable for tests, the CLI and the bench
/// binaries. Interior mutability is a single mutex; all storage is
/// ordered, so serialisation is deterministic whenever the *totals* are
/// (counters commute; histogram sums require a deterministic emission
/// order, which the sequential orchestration paths guarantee).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    inner: Mutex<MetricsSnapshot>,
    bucket_bounds: Option<Vec<f64>>,
}

impl MemoryRecorder {
    /// A recorder using [`DEFAULT_BUCKETS_MS`] for new histograms.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// A recorder whose histograms use the given upper bounds instead.
    pub fn with_buckets(bounds: &[f64]) -> Self {
        MemoryRecorder {
            inner: Mutex::new(MetricsSnapshot::default()),
            bucket_bounds: Some(bounds.to_vec()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, MetricsSnapshot> {
        // A panic while holding the lock poisons it; the data itself is
        // still coherent (every verb is a single mutation), so recover.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Discards everything recorded so far.
    pub fn reset(&self) {
        *self.lock() = MetricsSnapshot::default();
    }
}

impl Recorder for MemoryRecorder {
    fn incr(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn observe(&self, name: &str, value: f64) {
        let bounds = self
            .bucket_bounds
            .clone()
            .unwrap_or_else(|| DEFAULT_BUCKETS_MS.to_vec());
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(&bounds))
            .record(value);
    }

    fn span(&self, name: &str, start: u64, end: u64) {
        self.lock().spans.push(SpanRecord {
            name: name.to_owned(),
            start,
            end,
        });
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(self.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_discards_and_reports_disabled() {
        let r = NoopRecorder;
        r.incr("a", 3);
        r.observe("b", 1.0);
        r.span("c", 0, 5);
        assert!(!r.enabled());
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn memory_recorder_accumulates() {
        let r = MemoryRecorder::new();
        r.incr("hits", 2);
        r.incr("hits", 3);
        r.observe("rtt", 4.0);
        r.observe("rtt", 400.0);
        r.span("phase", 10, 30);
        let snap = r.snapshot().expect("memory recorder retains data");
        assert_eq!(snap.counter("hits"), 5);
        let h = &snap.histograms["rtt"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 404.0);
        assert_eq!(
            snap.spans,
            vec![SpanRecord {
                name: "phase".into(),
                start: 10,
                end: 30
            }]
        );
        assert_eq!(snap.spans[0].duration(), 20);
    }

    #[test]
    fn histogram_buckets_including_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(1.0); // boundary lands in the `<= 1.0` bucket
        h.record(5.0);
        h.record(100.0); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn snapshot_serialises_sorted_and_stable() {
        let r = MemoryRecorder::new();
        r.incr("z.second", 1);
        r.incr("a.first", 1);
        let json = r.snapshot().expect("snapshot").to_json().to_compact();
        let a = json.find("a.first").expect("a.first present");
        let z = json.find("z.second").expect("z.second present");
        assert!(a < z, "counters must serialise alphabetically");
    }

    #[test]
    fn empty_histogram_serialises_zero_min_max() {
        let h = Histogram::new(&[1.0]);
        let json = h.to_json().to_compact();
        assert!(json.contains("\"min\":0.0"));
        assert!(json.contains("\"max\":0.0"));
    }
}
