//! Canonical metric names.
//!
//! Producers (`qasom-registry`, `qasom-selection`, `qasom`) and the
//! report assembly agree on these constants so a renamed counter is a
//! compile error, not a silently empty report field.

/// Discovery queries answered via the inverted capability index.
pub const DISCOVERY_INDEXED: &str = "discovery.indexed_queries";
/// Discovery queries that fell back to the linear registry scan.
pub const DISCOVERY_LINEAR: &str = "discovery.linear_queries";
/// Service descriptions evaluated (signature + QoS) across all queries.
pub const DISCOVERY_EVALUATED: &str = "discovery.services_evaluated";
/// Candidates that survived discovery filtering.
pub const DISCOVERY_CANDIDATES: &str = "discovery.candidates";

/// QASSA selections performed (global phase entered).
pub const SELECTION_RUNS: &str = "selection.runs";
/// QASSA local-phase rankings performed (one per activity).
pub const SELECTION_LOCAL_RANKS: &str = "selection.local.ranks";
/// QoS levels (clusters) produced by the local phase.
pub const SELECTION_LOCAL_LEVELS: &str = "selection.local.levels";
/// Candidates ranked by the local phase.
pub const SELECTION_LOCAL_CANDIDATES: &str = "selection.local.candidates";
/// QoS levels the global phase actually explored.
pub const SELECTION_LEVELS_EXPLORED: &str = "selection.global.levels_explored";
/// Full-assignment utility/constraint evaluations in the global phase.
pub const SELECTION_UTILITY_EVALS: &str = "selection.global.utility_evaluations";
/// Repair swaps attempted while patching near-feasible assignments.
pub const SELECTION_REPAIR_SWAPS: &str = "selection.global.repair_swaps";
/// Candidates pruned (never admitted to the winning level prefix).
pub const SELECTION_PRUNED: &str = "selection.global.pruned_candidates";
/// Exhaustive-scan fallbacks taken after the level-wise search failed.
pub const SELECTION_EXACT_FALLBACKS: &str = "selection.global.exact_fallbacks";

/// Flat per-property value columns materialised by the local phase.
pub const SELECTION_HOTPATH_COLUMNS: &str = "selection.hotpath.columns_built";
/// Activities ranked into an already-warm scratch arena (no fresh
/// allocation).
pub const SELECTION_HOTPATH_SCRATCH_REUSES: &str = "selection.hotpath.scratch_reuses";

/// Delta re-selections attempted (`Environment::recompose` calls).
pub const SELECTION_DELTA_ATTEMPTS: &str = "selection.delta.attempts";
/// Re-selections answered incrementally from cached QoS levels.
pub const SELECTION_DELTA_INCREMENTAL: &str = "selection.delta.incremental";
/// Re-selections that fell back to a full recompose (guard tripped).
pub const SELECTION_DELTA_FULL: &str = "selection.delta.full_recomposes";
/// Activities actually re-ranked on the incremental path.
pub const SELECTION_DELTA_RERANKED: &str = "selection.delta.activities_reranked";

/// Protocol messages sent during a distributed run.
pub const DISTRIBUTED_MESSAGES: &str = "distributed.messages";
/// Retransmissions the coordinator issued.
pub const DISTRIBUTED_RETRIES: &str = "distributed.retries";
/// Providers whose digest reached the coordinator.
pub const DISTRIBUTED_PROVIDERS_HEARD: &str = "distributed.providers_heard";
/// Histogram of provider round-trip times in simulated milliseconds.
pub const DISTRIBUTED_RTT_MS: &str = "distributed.rtt_ms";

/// Messages dropped by simulated links.
pub const NETSIM_DROPPED: &str = "netsim.dropped";
/// Messages delivered by simulated links.
pub const NETSIM_DELIVERED: &str = "netsim.delivered";
/// Timers cancelled before firing (deadline/retry hygiene).
pub const NETSIM_TIMERS_CANCELLED: &str = "netsim.timers_cancelled";

/// Compositions produced.
pub const EVENT_COMPOSED: &str = "events.composed";
/// Successful activity invocations.
pub const EVENT_INVOKED: &str = "events.invoked";
/// Failed activity invocations.
pub const EVENT_INVOCATION_FAILED: &str = "events.invocation_failed";
/// Observed or predicted constraint violations.
pub const EVENT_VIOLATION: &str = "events.violation_detected";
/// Service substitutions.
pub const EVENT_SUBSTITUTED: &str = "events.substituted";
/// Behavioural adaptations (task-class behaviour switches).
pub const EVENT_BEHAVIOURAL: &str = "events.behavioural_adaptation";
/// Non-fatal analyzer diagnostics surfaced during ingestion.
pub const EVENT_ANALYSIS_WARNING: &str = "events.analysis_warning";
/// Completed executions (successful or not).
pub const EVENT_COMPLETED: &str = "events.completed";

/// Sessions served through `SharedEnvironment::serve`.
pub const SERVING_SESSIONS: &str = "serving.sessions";
/// Read-lock acquisitions by the serving layer (compose/query phase).
pub const SERVING_READ_LOCKS: &str = "serving.read_locks";
/// Write-lock acquisitions by the serving layer (execute/churn phase).
pub const SERVING_WRITE_LOCKS: &str = "serving.write_locks";
/// Registry snapshots handed out (`Environment::registry_snapshot`).
pub const SERVING_SNAPSHOTS: &str = "serving.snapshot_refreshes";

/// Sessions the daemon's admission layer accepted into the queue.
pub const DAEMON_ADMITTED: &str = "daemon.sessions_admitted";
/// Sessions shed with a `Busy` outcome because the queue was full.
pub const DAEMON_SHED: &str = "daemon.sessions_shed";
/// Sessions shed with a `Busy` outcome because a client exceeded its
/// in-flight quota.
pub const DAEMON_QUOTA_DENIALS: &str = "daemon.quota_denials";
/// Sessions that completed execution through the daemon.
pub const DAEMON_COMPLETED: &str = "daemon.sessions_completed";
/// Sessions rejected by static analysis (typed `Rejected` outcome).
pub const DAEMON_REJECTED: &str = "daemon.sessions_rejected";
/// Sessions that failed with a serve error (non-typed failure frame).
pub const DAEMON_FAILED: &str = "daemon.sessions_failed";
/// Compose batches formed by the batcher (one compose pass each).
pub const DAEMON_BATCHES: &str = "daemon.batches";
/// Sessions served out of shared-compose batches.
pub const DAEMON_BATCHED_SESSIONS: &str = "daemon.batched_sessions";
/// Frames the daemon read from client connections.
pub const DAEMON_FRAMES_READ: &str = "daemon.frames_read";
/// Frames the daemon wrote back to client connections.
pub const DAEMON_FRAMES_WRITTEN: &str = "daemon.frames_written";
/// Broker scheduling rounds (ticks) executed.
pub const DAEMON_TICKS: &str = "daemon.ticks";

/// Concurrency models explored by `qasom-check`.
pub const CHECK_MODELS: &str = "check.models_explored";
/// Maximal schedules explored across all `qasom-check` models.
pub const CHECK_SCHEDULES: &str = "check.schedules";
/// Model steps executed across all `qasom-check` explorations.
pub const CHECK_STEPS: &str = "check.steps";
/// Deadlocked schedules found (must stay 0).
pub const CHECK_DEADLOCKS: &str = "check.deadlocks";
/// Invariant violations found (must stay 0).
pub const CHECK_VIOLATIONS: &str = "check.violations";

/// Gossip rounds the cluster origin completed.
pub const CLUSTER_GOSSIP_ROUNDS: &str = "cluster.gossip_rounds";
/// Incremental event deltas the origin shipped to shard peers.
pub const CLUSTER_DELTAS_SHIPPED: &str = "cluster.deltas_shipped";
/// Registry events replicated onto shard peers (bucket-filtered).
pub const CLUSTER_EVENTS_REPLICATED: &str = "cluster.events_replicated";
/// Pulls answered with a full snapshot after an event-log gap.
pub const CLUSTER_SNAPSHOT_FALLBACKS: &str = "cluster.snapshot_fallbacks";
/// Pull retransmissions shard peers issued.
pub const CLUSTER_RETRIES: &str = "cluster.retries";
/// Scatter/gather discovery queries fanned across the shards.
pub const CLUSTER_SCATTER_QUERIES: &str = "cluster.scatter_queries";
/// Shards unreachable during the run (degraded coverage).
pub const CLUSTER_SHARDS_LOST: &str = "cluster.shards_lost";

/// WAL records the registry journal appended.
pub const PERSIST_WAL_APPENDS: &str = "persistence.wal.appends";
/// WAL bytes written (frame headers included).
pub const PERSIST_WAL_BYTES: &str = "persistence.wal.bytes";
/// Snapshot checkpoints taken (WAL truncated each time).
pub const PERSIST_CHECKPOINTS: &str = "persistence.checkpoints";
/// Events replayed from the WAL tail on boot.
pub const PERSIST_REPLAY_EVENTS: &str = "persistence.replay.events";
/// Torn WAL tails detected and discarded on boot (never replayed).
pub const PERSIST_TORN_TAIL: &str = "persistence.wal.torn_tail";
/// Snapshots loaded on boot.
pub const PERSIST_SNAPSHOT_LOADS: &str = "persistence.snapshot.loads";
/// Journal I/O failures (journaling stops at the first one).
pub const PERSIST_ERRORS: &str = "persistence.errors";

/// Span covering one QASSA selection (logical clock: activities done).
pub const SPAN_SELECT: &str = "qassa.select";
/// Span covering a distributed run's local phase (simulated µs).
pub const SPAN_DISTRIBUTED_LOCAL: &str = "distributed.local_phase";
/// Span covering a distributed run's global phase (simulated µs).
pub const SPAN_DISTRIBUTED_GLOBAL: &str = "distributed.global_phase";
