//! # qasom-obs — deterministic observability for the QASOM middleware
//!
//! The thesis evaluates QASOM through per-phase timings and
//! protocol-level counts (selection latency, distributed message and
//! coverage figures). This crate is the instrumentation seam that makes
//! those quantities visible in the reproduction without ever touching a
//! wall clock: every span is keyed on *logical or simulated* time
//! supplied by the caller, so the `qasom-lint` determinism rules apply
//! to this crate unchanged.
//!
//! Three layers:
//!
//! * [`Recorder`] — the trait the pipeline is instrumented against.
//!   Producers hold an `Option<&dyn Recorder>`; the disabled path is a
//!   single branch on `None` and allocates nothing. [`NoopRecorder`]
//!   exists for callers that want a value rather than an option.
//! * [`MemoryRecorder`] — an in-memory implementation backed by ordered
//!   maps (`BTreeMap`), so a [`MetricsSnapshot`] always serialises with
//!   a stable field order regardless of emission interleaving.
//! * [`report`] — the one serialisable schema every consumer parses:
//!   [`report::RunReport`] unifies the composition pipeline metrics,
//!   the distributed protocol counters (previously only in
//!   `DistributedReport`/`FaultReport`) and the bench figure series.
//!
//! Serialisation is hand-rolled ([`JsonValue`]) because the workspace
//! is offline and vendors no serde: objects keep insertion order,
//! floats render via Rust's shortest-roundtrip formatter, and the same
//! seed therefore yields a byte-identical report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
pub mod keys;
mod recorder;
pub mod report;

pub use json::{key_paths, JsonValue};
pub use recorder::{
    Histogram, MemoryRecorder, MetricsSnapshot, NoopRecorder, Recorder, SpanRecord,
    DEFAULT_BUCKETS_MS,
};
