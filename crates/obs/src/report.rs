//! The one serialisable report schema every consumer parses.
//!
//! Before this module the repo had three unrelated report shapes: the
//! distributed protocol's `DistributedReport`/`FaultReport` structs,
//! the bench binaries' printed figure tables, and nothing at all for a
//! plain `compose`/`execute` run. [`RunReport`] unifies them — each
//! producer fills the section it knows about, and the whole document
//! serialises with a stable field order so identical seeds yield
//! byte-identical JSON.
//!
//! Sections are plain structs with public fields (no builder
//! ceremony): producers in `qasom-registry`, `qasom-selection` and
//! `qasom` construct them directly, and this crate only owns the shape
//! and the serialisation.

use crate::json::JsonValue;
use crate::recorder::MetricsSnapshot;

/// Schema identifier stamped into every report; bump on breaking shape
/// changes so downstream diffing can refuse mixed comparisons.
pub const RUN_REPORT_SCHEMA: &str = "qasom.run-report.v1";

/// Schema identifier for bench trajectory files (`BENCH_*.json`).
pub const BENCH_REPORT_SCHEMA: &str = "qasom.bench-report.v1";

/// Discovery-side totals: index-vs-linear path split and the
/// `MatchCache` hit ratio.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiscoverySection {
    /// Queries answered via the inverted capability index.
    pub indexed_queries: u64,
    /// Queries that fell back to the linear registry scan.
    pub linear_queries: u64,
    /// Service descriptions evaluated across all queries.
    pub services_evaluated: u64,
    /// Candidates that survived discovery filtering.
    pub candidates: u64,
    /// `MatchCache` lookups that hit.
    pub cache_hits: u64,
    /// `MatchCache` lookups that missed (and were computed + stored).
    pub cache_misses: u64,
}

impl DiscoverySection {
    /// Fraction of cache lookups that hit, 0 when the cache was idle.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("indexed_queries", self.indexed_queries)
            .field("linear_queries", self.linear_queries)
            .field("services_evaluated", self.services_evaluated)
            .field("candidates", self.candidates)
            .field("cache_hits", self.cache_hits)
            .field("cache_misses", self.cache_misses)
            .field("cache_hit_ratio", self.cache_hit_ratio())
    }
}

/// QASSA totals across the local (clustering) and global (level-wise
/// search + repair) phases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectionSection {
    /// Selections performed.
    pub runs: u64,
    /// Activities ranked by the local phase.
    pub local_ranks: u64,
    /// QoS levels (clusters) the local phase produced.
    pub local_levels: u64,
    /// Candidates ranked by the local phase.
    pub local_candidates: u64,
    /// QoS levels the global phase explored.
    pub levels_explored: u64,
    /// Full-assignment utility/constraint evaluations.
    pub utility_evaluations: u64,
    /// Repair swaps attempted.
    pub repair_swaps: u64,
    /// Candidates pruned (never admitted to the explored prefix).
    pub pruned_candidates: u64,
    /// Exhaustive-scan fallbacks taken.
    pub exact_fallbacks: u64,
}

impl SelectionSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("runs", self.runs)
            .field("local_ranks", self.local_ranks)
            .field("local_levels", self.local_levels)
            .field("local_candidates", self.local_candidates)
            .field("levels_explored", self.levels_explored)
            .field("utility_evaluations", self.utility_evaluations)
            .field("repair_swaps", self.repair_swaps)
            .field("pruned_candidates", self.pruned_candidates)
            .field("exact_fallbacks", self.exact_fallbacks)
    }
}

/// Simulated-network totals for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetsimSection {
    /// Messages handed to links.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped by lossy links.
    pub dropped: u64,
    /// Timers cancelled before firing.
    pub timers_cancelled: u64,
    /// Final simulated clock, microseconds.
    pub sim_time_us: u64,
}

impl NetsimSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("sent", self.sent)
            .field("delivered", self.delivered)
            .field("dropped", self.dropped)
            .field("timers_cancelled", self.timers_cancelled)
            .field("sim_time_us", self.sim_time_us)
    }
}

/// Round-trip time of one provider, on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProviderRtt {
    /// Provider node id.
    pub node: u32,
    /// First-digest round-trip time in simulated microseconds.
    pub rtt_us: u64,
}

impl ProviderRtt {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("node", self.node)
            .field("rtt_us", self.rtt_us)
    }
}

/// Per-activity shortfall in a degraded distributed run (mirrors the
/// protocol's fault report).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageEntry {
    /// Activity name.
    pub activity: String,
    /// Candidates merged from the providers that answered.
    pub candidates_heard: u64,
    /// Candidates the full workload holds for this activity.
    pub candidates_total: u64,
}

impl CoverageEntry {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("activity", self.activity.as_str())
            .field("candidates_heard", self.candidates_heard)
            .field("candidates_total", self.candidates_total)
    }
}

/// Distributed-protocol totals for one run; the serialisable face of
/// `DistributedReport` + `FaultReport`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DistributedSection {
    /// Providers the coordinator addressed.
    pub providers: u64,
    /// Providers whose digest arrived before the deadline.
    pub providers_heard: u64,
    /// Protocol messages sent.
    pub messages: u64,
    /// Discrete events the simulation processed.
    pub sim_events: u64,
    /// Retransmissions issued.
    pub retries: u64,
    /// Fraction of the full candidate pool that was heard.
    pub coverage_ratio: f64,
    /// Whether the run finished on partial knowledge.
    pub degraded: bool,
    /// Whether the selected assignment met every constraint.
    pub feasible: bool,
    /// Utility of the selected assignment.
    pub utility: f64,
    /// Local phase duration, simulated microseconds.
    pub local_phase_us: u64,
    /// Global phase duration, simulated microseconds.
    pub global_phase_us: u64,
    /// Per-provider first-digest RTTs, ascending node id.
    pub provider_rtt: Vec<ProviderRtt>,
    /// Per-activity coverage shortfalls (empty when full).
    pub coverage: Vec<CoverageEntry>,
    /// Network totals for the run.
    pub net: NetsimSection,
}

impl DistributedSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("providers", self.providers)
            .field("providers_heard", self.providers_heard)
            .field("messages", self.messages)
            .field("sim_events", self.sim_events)
            .field("retries", self.retries)
            .field("coverage_ratio", self.coverage_ratio)
            .field("degraded", self.degraded)
            .field("feasible", self.feasible)
            .field("utility", self.utility)
            .field("local_phase_us", self.local_phase_us)
            .field("global_phase_us", self.global_phase_us)
            .field(
                "provider_rtt",
                self.provider_rtt
                    .iter()
                    .map(ProviderRtt::to_json)
                    .collect::<Vec<_>>(),
            )
            .field(
                "coverage",
                self.coverage
                    .iter()
                    .map(CoverageEntry::to_json)
                    .collect::<Vec<_>>(),
            )
            .field("net", self.net.to_json())
    }
}

/// Clustered-registry totals for one run: gossip replication traffic,
/// scatter/gather coverage and the staleness bound.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterSection {
    /// Shards the registry was partitioned into.
    pub shards: u64,
    /// Shards unreachable during the run.
    pub shards_lost: u64,
    /// Gossip rounds the origin completed.
    pub gossip_rounds: u64,
    /// Incremental event deltas shipped to peers.
    pub deltas_shipped: u64,
    /// Registry events replicated onto peers (bucket-filtered).
    pub events_replicated: u64,
    /// Pulls answered with a full snapshot (event-log gap fallback).
    pub snapshot_fallbacks: u64,
    /// Pull retransmissions peers issued.
    pub retries: u64,
    /// Scatter/gather queries fanned across the shards.
    pub scatter_queries: u64,
    /// Fraction of the oracle's candidates the gather produced (1.0 when
    /// no shard was lost).
    pub coverage_ratio: f64,
    /// Whether any shard was unreachable (coverage below the oracle).
    pub degraded: bool,
    /// Whether every live shard reached the origin's head.
    pub converged: bool,
    /// Events the most-lagged live shard trails the head by.
    pub max_staleness_events: u64,
    /// Network totals for the replication plane.
    pub net: NetsimSection,
}

impl ClusterSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("shards", self.shards)
            .field("shards_lost", self.shards_lost)
            .field("gossip_rounds", self.gossip_rounds)
            .field("deltas_shipped", self.deltas_shipped)
            .field("events_replicated", self.events_replicated)
            .field("snapshot_fallbacks", self.snapshot_fallbacks)
            .field("retries", self.retries)
            .field("scatter_queries", self.scatter_queries)
            .field("coverage_ratio", self.coverage_ratio)
            .field("degraded", self.degraded)
            .field("converged", self.converged)
            .field("max_staleness_events", self.max_staleness_events)
            .field("net", self.net.to_json())
    }
}

/// Registry persistence totals for one run: WAL traffic, checkpoints
/// and what boot recovery found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PersistenceSection {
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes written (frame headers included).
    pub wal_bytes: u64,
    /// Snapshot checkpoints taken.
    pub checkpoints: u64,
    /// Events replayed from the WAL tail on boot.
    pub replayed_events: u64,
    /// Torn WAL tails detected and discarded on boot.
    pub torn_tails: u64,
    /// Snapshots loaded on boot.
    pub snapshot_loads: u64,
    /// Journal I/O failures (journaling stops at the first one).
    pub errors: u64,
}

impl PersistenceSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("wal_appends", self.wal_appends)
            .field("wal_bytes", self.wal_bytes)
            .field("checkpoints", self.checkpoints)
            .field("replayed_events", self.replayed_events)
            .field("torn_tails", self.torn_tails)
            .field("snapshot_loads", self.snapshot_loads)
            .field("errors", self.errors)
    }
}

/// Outcome of the composition step of a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComposeSection {
    /// Task name.
    pub task: String,
    /// Whether the selection met every global constraint.
    pub feasible: bool,
    /// QoS levels QASSA explored.
    pub levels_explored: u64,
    /// Utility of the selected assignment.
    pub utility: f64,
    /// Analyzer diagnostics carried on the composition.
    pub analyzer_warnings: u64,
}

impl ComposeSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("task", self.task.as_str())
            .field("feasible", self.feasible)
            .field("levels_explored", self.levels_explored)
            .field("utility", self.utility)
            .field("analyzer_warnings", self.analyzer_warnings)
    }
}

/// Outcome of the execution/adaptation step of a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionSection {
    /// Whether every activity was eventually served.
    pub success: bool,
    /// Activity invocations attempted.
    pub invocations: u64,
    /// Invocations that failed.
    pub failures: u64,
    /// Service substitutions performed.
    pub substitutions: u64,
    /// Behavioural adaptations performed.
    pub behavioural_adaptations: u64,
    /// Constraint violations detected (observed or predicted).
    pub violations: u64,
    /// End-to-end delivered QoS, `(property, value)` pairs in the QoS
    /// model's property order.
    pub delivered: Vec<(String, f64)>,
}

impl ExecutionSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        let mut delivered = JsonValue::object();
        for (name, value) in &self.delivered {
            delivered = delivered.field(name, *value);
        }
        JsonValue::object()
            .field("success", self.success)
            .field("invocations", self.invocations)
            .field("failures", self.failures)
            .field("substitutions", self.substitutions)
            .field("behavioural_adaptations", self.behavioural_adaptations)
            .field("violations", self.violations)
            .field("delivered", delivered)
    }
}

/// Serving-layer totals: how sessions moved through the
/// `SharedEnvironment` lock split (compose under read, execute under
/// write).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingSection {
    /// Sessions served (`serve` calls).
    pub sessions: u64,
    /// Read-lock acquisitions (concurrent compose/query phase).
    pub read_locks: u64,
    /// Write-lock acquisitions (execution / churn phase).
    pub write_locks: u64,
    /// Registry snapshots handed out to sessions.
    pub snapshot_refreshes: u64,
}

impl ServingSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("sessions", self.sessions)
            .field("read_locks", self.read_locks)
            .field("write_locks", self.write_locks)
            .field("snapshot_refreshes", self.snapshot_refreshes)
    }
}

/// Daemon-side totals: how sessions moved through `qasomd`'s admission
/// queue, batcher and framing layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DaemonSection {
    /// Sessions admitted into the bounded queue.
    pub sessions_admitted: u64,
    /// Sessions shed with `Busy` because the queue was at capacity.
    pub sessions_shed: u64,
    /// Sessions shed with `Busy` because a client exceeded its quota.
    pub quota_denials: u64,
    /// Sessions that completed execution.
    pub sessions_completed: u64,
    /// Sessions rejected by static analysis (typed outcome).
    pub sessions_rejected: u64,
    /// Sessions that failed with a serve error.
    pub sessions_failed: u64,
    /// Compose batches formed (one discovery/selection pass each).
    pub batches: u64,
    /// Sessions served out of those batches.
    pub batched_sessions: u64,
    /// Frames read from client connections.
    pub frames_read: u64,
    /// Frames written back to client connections.
    pub frames_written: u64,
    /// Broker scheduling rounds executed.
    pub ticks: u64,
}

impl DaemonSection {
    /// Mean sessions per compose batch, 0 when no batch formed.
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_sessions as f64 / self.batches as f64
        }
    }

    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("sessions_admitted", self.sessions_admitted)
            .field("sessions_shed", self.sessions_shed)
            .field("quota_denials", self.quota_denials)
            .field("sessions_completed", self.sessions_completed)
            .field("sessions_rejected", self.sessions_rejected)
            .field("sessions_failed", self.sessions_failed)
            .field("batches", self.batches)
            .field("batched_sessions", self.batched_sessions)
            .field("batch_occupancy", self.batch_occupancy())
            .field("frames_read", self.frames_read)
            .field("frames_written", self.frames_written)
            .field("ticks", self.ticks)
    }
}

/// Hot-path totals: flat-column local ranking, IRI interning at the
/// discovery boundary, and the delta-vs-full split of re-selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HotpathSection {
    /// Flat per-property value columns materialised by the local phase.
    pub columns_built: u64,
    /// Local rankings that reused an already-warm scratch arena.
    pub scratch_reuses: u64,
    /// Distinct IRIs interned by the semantic match cache.
    pub interned_iris: u64,
    /// Re-selections attempted (delta-first entry point).
    pub delta_attempts: u64,
    /// Re-selections that completed on the incremental path.
    pub delta_incremental: u64,
    /// Re-selections that fell back to a full recompose.
    pub delta_full_recomposes: u64,
    /// Activities actually re-ranked across all incremental runs.
    pub delta_activities_reranked: u64,
}

impl HotpathSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("columns_built", self.columns_built)
            .field("scratch_reuses", self.scratch_reuses)
            .field("interned_iris", self.interned_iris)
            .field("delta_attempts", self.delta_attempts)
            .field("delta_incremental", self.delta_incremental)
            .field("delta_full_recomposes", self.delta_full_recomposes)
            .field("delta_activities_reranked", self.delta_activities_reranked)
    }
}

/// Outcome of exploring one concurrency model in `qasom-check`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelCheck {
    /// Model name (`compose-churn`, `shard-stamp`, `admission-queue`).
    pub name: String,
    /// Model thread count.
    pub threads: u64,
    /// Preemption budget the exploration ran under.
    pub preemption_bound: u64,
    /// Maximal schedules explored.
    pub schedules: u64,
    /// Model steps executed.
    pub steps: u64,
    /// Longest schedule, in steps.
    pub max_depth: u64,
    /// Deadlocked schedules found.
    pub deadlocks: u64,
    /// Invariant violations found.
    pub violations: u64,
}

impl ModelCheck {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("name", self.name.as_str())
            .field("threads", self.threads)
            .field("preemption_bound", self.preemption_bound)
            .field("schedules", self.schedules)
            .field("steps", self.steps)
            .field("max_depth", self.max_depth)
            .field("deadlocks", self.deadlocks)
            .field("violations", self.violations)
    }
}

/// Schedule-explorer totals: `qasom-check`'s deterministic verdict over
/// the workspace's concurrency protocol models.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckSection {
    /// Maximal schedules explored across all models.
    pub schedules: u64,
    /// Model steps executed across all models.
    pub steps: u64,
    /// Deadlocked schedules found (0 in a passing run).
    pub deadlocks: u64,
    /// Invariant violations found (0 in a passing run).
    pub violations: u64,
    /// Per-model breakdown, in suite order.
    pub models: Vec<ModelCheck>,
}

impl CheckSection {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("schedules", self.schedules)
            .field("steps", self.steps)
            .field("deadlocks", self.deadlocks)
            .field("violations", self.violations)
            .field(
                "models",
                self.models
                    .iter()
                    .map(ModelCheck::to_json)
                    .collect::<Vec<_>>(),
            )
    }
}

/// The unified, seed-stamped run report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Always [`RUN_REPORT_SCHEMA`].
    pub schema: String,
    /// The seed that produced this run (reports are a pure function of
    /// it).
    pub seed: u64,
    /// Free-form scenario label (`"builtin"`, a task name, …).
    pub scenario: String,
    /// Composition outcome, when the run composed a task.
    pub compose: Option<ComposeSection>,
    /// Execution outcome, when the run executed the composition.
    pub execution: Option<ExecutionSection>,
    /// Discovery totals.
    pub discovery: Option<DiscoverySection>,
    /// Selection totals.
    pub selection: Option<SelectionSection>,
    /// Distributed-protocol totals, when the run was distributed.
    pub distributed: Option<DistributedSection>,
    /// Clustered-registry totals, when the run went through the sharded
    /// registry.
    pub cluster: Option<ClusterSection>,
    /// Registry-persistence totals, when the run journaled to a WAL.
    pub persistence: Option<PersistenceSection>,
    /// Serving-layer totals, when the run went through
    /// `SharedEnvironment`.
    pub serving: Option<ServingSection>,
    /// Daemon-layer totals, when the run went through `qasomd`.
    pub daemon: Option<DaemonSection>,
    /// Hot-path totals (flat columns, interning, delta re-selection).
    pub hotpath: Option<HotpathSection>,
    /// Schedule-explorer totals, when the run exercised `qasom-check`.
    pub check: Option<CheckSection>,
    /// Raw metric snapshot (counters / histograms / spans).
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// An empty report for the given seed and scenario label.
    pub fn new(seed: u64, scenario: &str) -> Self {
        RunReport {
            schema: RUN_REPORT_SCHEMA.to_owned(),
            seed,
            scenario: scenario.to_owned(),
            compose: None,
            execution: None,
            discovery: None,
            selection: None,
            distributed: None,
            cluster: None,
            persistence: None,
            serving: None,
            daemon: None,
            hotpath: None,
            check: None,
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Serialises with a stable field order. Absent sections serialise
    /// as `null` so the key set — the schema CI diffs — is identical
    /// across runs that exercise different pipeline subsets.
    pub fn to_json(&self) -> JsonValue {
        fn opt(v: Option<JsonValue>) -> JsonValue {
            v.unwrap_or(JsonValue::Null)
        }
        JsonValue::object()
            .field("schema", self.schema.as_str())
            .field("seed", self.seed)
            .field("scenario", self.scenario.as_str())
            .field(
                "compose",
                opt(self.compose.as_ref().map(ComposeSection::to_json)),
            )
            .field(
                "execution",
                opt(self.execution.as_ref().map(ExecutionSection::to_json)),
            )
            .field(
                "discovery",
                opt(self.discovery.as_ref().map(DiscoverySection::to_json)),
            )
            .field(
                "selection",
                opt(self.selection.as_ref().map(SelectionSection::to_json)),
            )
            .field(
                "distributed",
                opt(self.distributed.as_ref().map(DistributedSection::to_json)),
            )
            .field(
                "cluster",
                opt(self.cluster.as_ref().map(ClusterSection::to_json)),
            )
            .field(
                "persistence",
                opt(self.persistence.as_ref().map(PersistenceSection::to_json)),
            )
            .field(
                "serving",
                opt(self.serving.as_ref().map(ServingSection::to_json)),
            )
            .field(
                "daemon",
                opt(self.daemon.as_ref().map(DaemonSection::to_json)),
            )
            .field(
                "hotpath",
                opt(self.hotpath.as_ref().map(HotpathSection::to_json)),
            )
            .field("check", opt(self.check.as_ref().map(CheckSection::to_json)))
            .field("metrics", self.metrics.to_json())
    }

    /// Canonical byte-stable serialisation (what golden tests compare).
    pub fn to_compact_string(&self) -> String {
        self.to_json().to_compact()
    }

    /// Human-oriented serialisation (still deterministic).
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty()
    }
}

/// One plotted series of a bench figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Series label, as printed by the bench harness.
    pub label: String,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
}

impl FigureSeries {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        let points = self
            .points
            .iter()
            .map(|(x, y)| JsonValue::Array(vec![JsonValue::from(*x), JsonValue::from(*y)]))
            .collect::<Vec<_>>();
        JsonValue::object()
            .field("label", self.label.as_str())
            .field("points", points)
    }
}

/// One bench figure (a named group of series).
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure key (`vi5`, `loss`, …) as accepted by the repro binary.
    pub name: String,
    /// The figure's series.
    pub series: Vec<FigureSeries>,
}

impl Figure {
    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object().field("name", self.name.as_str()).field(
            "series",
            self.series
                .iter()
                .map(FigureSeries::to_json)
                .collect::<Vec<_>>(),
        )
    }
}

/// A bench trajectory file (`BENCH_*.json`): the machine-readable twin
/// of the repro binary's printed figures.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Always [`BENCH_REPORT_SCHEMA`].
    pub schema: String,
    /// Base seed of the bench run.
    pub seed: u64,
    /// The regenerated figures.
    pub figures: Vec<Figure>,
}

impl BenchReport {
    /// An empty bench report for the given base seed.
    pub fn new(seed: u64) -> Self {
        BenchReport {
            schema: BENCH_REPORT_SCHEMA.to_owned(),
            seed,
            figures: Vec::new(),
        }
    }

    /// Serialises with a stable field order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("schema", self.schema.as_str())
            .field("seed", self.seed)
            .field(
                "figures",
                self.figures.iter().map(Figure::to_json).collect::<Vec<_>>(),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full_reports_share_a_top_level_key_set() {
        let empty = RunReport::new(1, "a");
        let mut full = RunReport::new(2, "b");
        full.compose = Some(ComposeSection::default());
        full.execution = Some(ExecutionSection::default());
        full.discovery = Some(DiscoverySection::default());
        full.selection = Some(SelectionSection::default());
        full.distributed = Some(DistributedSection::default());
        full.cluster = Some(ClusterSection::default());
        full.persistence = Some(PersistenceSection::default());
        full.serving = Some(ServingSection::default());
        full.daemon = Some(DaemonSection::default());
        full.hotpath = Some(HotpathSection::default());
        full.check = Some(CheckSection::default());
        let top = |r: &RunReport| match r.to_json() {
            JsonValue::Object(fields) => fields.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            _ => Vec::new(),
        };
        assert_eq!(top(&empty), top(&full));
    }

    #[test]
    fn report_serialisation_is_deterministic() {
        let build = || {
            let mut r = RunReport::new(42, "demo");
            r.discovery = Some(DiscoverySection {
                indexed_queries: 3,
                cache_hits: 5,
                cache_misses: 5,
                ..DiscoverySection::default()
            });
            r.to_compact_string()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"cache_hit_ratio\":0.5"));
    }

    #[test]
    fn bench_report_serialises_figures() {
        let mut b = BenchReport::new(7);
        b.figures.push(Figure {
            name: "vi5".into(),
            series: vec![FigureSeries {
                label: "indexed".into(),
                points: vec![(1.0, 2.0), (3.0, 4.5)],
            }],
        });
        let json = b.to_json().to_compact();
        assert!(json.contains("\"schema\":\"qasom.bench-report.v1\""));
        assert!(json.contains("[3.0,4.5]"));
    }
}
