//! A minimal, deterministic JSON value and writer.
//!
//! The workspace vendors no serde, so reports serialise through this
//! hand-rolled tree. Two properties matter more than features:
//!
//! * **Stable field order** — objects are vectors of `(key, value)`
//!   pairs, emitted in insertion order, never hashed.
//! * **Stable number formatting** — floats go through Rust's
//!   shortest-roundtrip `{:?}` formatter; non-finite values collapse to
//!   `null` (JSON has no NaN/Inf).

use std::fmt::Write as _;

/// An owned JSON document node with insertion-ordered object fields.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values serialise as `null`.
    F64(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object whose fields keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::field`] chaining.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a field to an object (builder style). On non-objects the
    /// value is first replaced by an empty object, which never happens
    /// in practice and keeps the builder infallible.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        if !matches!(self, JsonValue::Object(_)) {
            self = JsonValue::object();
        }
        if let JsonValue::Object(fields) = &mut self {
            fields.push((key.to_owned(), value.into()));
        }
        self
    }

    /// Serialises without whitespace — the canonical byte-stable form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation (still deterministic; the
    /// compact form is what golden tests compare).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(u64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

/// Flattens a JSON tree into its sorted, deduplicated set of key paths
/// (`distributed.net.sent`, `figures[].series[].label`, …). Array
/// elements collapse to `[]`, so the result describes the *schema* of a
/// document independent of its values — the shape CI diffs against the
/// checked-in fixture.
pub fn key_paths(value: &JsonValue) -> Vec<String> {
    let mut paths = Vec::new();
    collect_paths(value, String::new(), &mut paths);
    paths.sort();
    paths.dedup();
    paths
}

fn collect_paths(value: &JsonValue, prefix: String, out: &mut Vec<String>) {
    match value {
        JsonValue::Object(fields) => {
            for (key, child) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                out.push(path.clone());
                collect_paths(child, path, out);
            }
        }
        JsonValue::Array(items) => {
            let path = format!("{prefix}[]");
            for item in items {
                collect_paths(item, path.clone(), out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::object().field("zeta", 1u64).field("alpha", 2u64);
        assert_eq!(v.to_compact(), r#"{"zeta":1,"alpha":2}"#);
    }

    #[test]
    fn floats_are_roundtrip_formatted_and_nonfinite_is_null() {
        let v = JsonValue::object()
            .field("half", 0.5f64)
            .field("one", 1.0f64)
            .field("nan", f64::NAN);
        assert_eq!(v.to_compact(), r#"{"half":0.5,"one":1.0,"nan":null}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = JsonValue::from("a\"b\\c\nd");
        assert_eq!(v.to_compact(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn key_paths_collapse_arrays() {
        let v = JsonValue::object().field(
            "figures",
            JsonValue::Array(vec![
                JsonValue::object().field("name", "a"),
                JsonValue::object().field("name", "b").field("extra", 1u64),
            ]),
        );
        assert_eq!(
            key_paths(&v),
            vec![
                "figures".to_owned(),
                "figures[].extra".to_owned(),
                "figures[].name".to_owned(),
            ]
        );
    }

    #[test]
    fn pretty_and_compact_agree_on_content() {
        let v = JsonValue::object()
            .field("a", JsonValue::Array(vec![1u64.into(), 2u64.into()]))
            .field("b", JsonValue::object().field("c", true));
        let stripped: String = v
            .to_pretty()
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        assert_eq!(stripped, v.to_compact());
    }
}
