//! Measurement units and conversions.

use std::fmt;

/// Physical/measurement dimension of a QoS unit.
///
/// Values can only be converted between units of the same dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Durations (response time, latency, jitter…).
    Time,
    /// Request rates (throughput).
    Rate,
    /// Data rates (bandwidth).
    DataRate,
    /// Probabilities and percentages (availability, reliability, loss…).
    Probability,
    /// Monetary cost.
    Money,
    /// Energy (battery drain per invocation).
    Energy,
    /// Radio signal power (log scale — no cross-unit conversion).
    SignalPower,
    /// Unit-less scores (reputation, security level, encoding quality…).
    Scalar,
}

/// Units understood by the QoS model, each belonging to one [`Dimension`].
///
/// Every dimension has a *canonical* unit (the first listed below) in which
/// [`QosVector`](crate::QosVector) values are stored:
///
/// | Dimension | Canonical unit |
/// |---|---|
/// | Time | milliseconds |
/// | Rate | requests/second |
/// | DataRate | kilobits/second |
/// | Probability | ratio in `[0, 1]` |
/// | Money | euro |
/// | Energy | millijoule |
/// | SignalPower | dBm |
/// | Scalar | dimensionless |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Unit {
    /// Milliseconds (canonical for [`Dimension::Time`]).
    Milliseconds,
    /// Seconds.
    Seconds,
    /// Minutes.
    Minutes,
    /// Requests per second (canonical for [`Dimension::Rate`]).
    RequestsPerSecond,
    /// Requests per minute.
    RequestsPerMinute,
    /// Kilobits per second (canonical for [`Dimension::DataRate`]).
    KilobitsPerSecond,
    /// Megabits per second.
    MegabitsPerSecond,
    /// A ratio in `[0, 1]` (canonical for [`Dimension::Probability`]).
    Ratio,
    /// A percentage in `[0, 100]`.
    Percent,
    /// Euros (canonical for [`Dimension::Money`]).
    Euro,
    /// Euro cents.
    Cent,
    /// Millijoules (canonical for [`Dimension::Energy`]).
    Millijoules,
    /// Joules.
    Joules,
    /// Decibel-milliwatts (canonical for [`Dimension::SignalPower`]).
    Dbm,
    /// Unit-less score (canonical for [`Dimension::Scalar`]).
    Dimensionless,
}

/// Error returned by unit conversions between incompatible dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitError {
    from: Unit,
    to: Unit,
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot convert {} ({:?}) to {} ({:?})",
            self.from,
            self.from.dimension(),
            self.to,
            self.to.dimension()
        )
    }
}

impl std::error::Error for UnitError {}

impl Unit {
    /// The dimension this unit measures.
    pub fn dimension(self) -> Dimension {
        match self {
            Unit::Milliseconds | Unit::Seconds | Unit::Minutes => Dimension::Time,
            Unit::RequestsPerSecond | Unit::RequestsPerMinute => Dimension::Rate,
            Unit::KilobitsPerSecond | Unit::MegabitsPerSecond => Dimension::DataRate,
            Unit::Ratio | Unit::Percent => Dimension::Probability,
            Unit::Euro | Unit::Cent => Dimension::Money,
            Unit::Millijoules | Unit::Joules => Dimension::Energy,
            Unit::Dbm => Dimension::SignalPower,
            Unit::Dimensionless => Dimension::Scalar,
        }
    }

    /// The canonical unit of this unit's dimension.
    pub fn canonical(self) -> Unit {
        match self.dimension() {
            Dimension::Time => Unit::Milliseconds,
            Dimension::Rate => Unit::RequestsPerSecond,
            Dimension::DataRate => Unit::KilobitsPerSecond,
            Dimension::Probability => Unit::Ratio,
            Dimension::Money => Unit::Euro,
            Dimension::Energy => Unit::Millijoules,
            Dimension::SignalPower => Unit::Dbm,
            Dimension::Scalar => Unit::Dimensionless,
        }
    }

    /// Multiplicative factor taking a value in this unit to the canonical
    /// unit of its dimension.
    fn factor_to_canonical(self) -> f64 {
        match self {
            Unit::Milliseconds => 1.0,
            Unit::Seconds => 1_000.0,
            Unit::Minutes => 60_000.0,
            Unit::RequestsPerSecond => 1.0,
            Unit::RequestsPerMinute => 1.0 / 60.0,
            Unit::KilobitsPerSecond => 1.0,
            Unit::MegabitsPerSecond => 1_000.0,
            Unit::Ratio => 1.0,
            Unit::Percent => 0.01,
            Unit::Euro => 1.0,
            Unit::Cent => 0.01,
            Unit::Millijoules => 1.0,
            Unit::Joules => 1_000.0,
            Unit::Dbm => 1.0,
            Unit::Dimensionless => 1.0,
        }
    }

    /// Converts `value` from this unit to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] when the units measure different dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use qasom_qos::Unit;
    ///
    /// let ms = Unit::Seconds.convert(1.5, Unit::Milliseconds).unwrap();
    /// assert_eq!(ms, 1500.0);
    /// assert!(Unit::Seconds.convert(1.0, Unit::Euro).is_err());
    /// ```
    pub fn convert(self, value: f64, target: Unit) -> Result<f64, UnitError> {
        if self.dimension() != target.dimension() {
            return Err(UnitError {
                from: self,
                to: target,
            });
        }
        Ok(value * self.factor_to_canonical() / target.factor_to_canonical())
    }

    /// Converts `value` from this unit to the canonical unit of its
    /// dimension (infallible).
    pub fn to_canonical(self, value: f64) -> f64 {
        value * self.factor_to_canonical()
    }
}

impl std::str::FromStr for Unit {
    type Err = ParseUnitError;

    /// Parses the symbols produced by [`Unit`]'s `Display` impl (e.g.
    /// `ms`, `s`, `req/s`, `ratio`, `%`, `EUR`, `dBm`), plus the empty
    /// string and `none` for [`Unit::Dimensionless`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "ms" => Unit::Milliseconds,
            "s" => Unit::Seconds,
            "min" => Unit::Minutes,
            "req/s" => Unit::RequestsPerSecond,
            "req/min" => Unit::RequestsPerMinute,
            "kbit/s" => Unit::KilobitsPerSecond,
            "Mbit/s" => Unit::MegabitsPerSecond,
            "ratio" => Unit::Ratio,
            "%" => Unit::Percent,
            "EUR" => Unit::Euro,
            "c" => Unit::Cent,
            "mJ" => Unit::Millijoules,
            "J" => Unit::Joules,
            "dBm" => Unit::Dbm,
            "" | "none" => Unit::Dimensionless,
            other => return Err(ParseUnitError(other.to_owned())),
        })
    }
}

/// Error returned when parsing an unknown unit symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUnitError(String);

impl fmt::Display for ParseUnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown unit symbol {:?}", self.0)
    }
}

impl std::error::Error for ParseUnitError {}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unit::Milliseconds => "ms",
            Unit::Seconds => "s",
            Unit::Minutes => "min",
            Unit::RequestsPerSecond => "req/s",
            Unit::RequestsPerMinute => "req/min",
            Unit::KilobitsPerSecond => "kbit/s",
            Unit::MegabitsPerSecond => "Mbit/s",
            Unit::Ratio => "ratio",
            Unit::Percent => "%",
            Unit::Euro => "EUR",
            Unit::Cent => "c",
            Unit::Millijoules => "mJ",
            Unit::Joules => "J",
            Unit::Dbm => "dBm",
            Unit::Dimensionless => "",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_to_milliseconds() {
        assert_eq!(Unit::Seconds.convert(2.0, Unit::Milliseconds), Ok(2000.0));
    }

    #[test]
    fn milliseconds_to_minutes() {
        assert_eq!(
            Unit::Milliseconds.convert(120_000.0, Unit::Minutes),
            Ok(2.0)
        );
    }

    #[test]
    fn percent_to_ratio() {
        let v = Unit::Percent.convert(95.0, Unit::Ratio).unwrap();
        assert!((v - 0.95).abs() < 1e-12);
    }

    #[test]
    fn cents_to_euro() {
        assert_eq!(Unit::Cent.convert(250.0, Unit::Euro), Ok(2.5));
    }

    #[test]
    fn requests_per_minute_to_per_second() {
        let v = Unit::RequestsPerMinute
            .convert(120.0, Unit::RequestsPerSecond)
            .unwrap();
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cross_dimension_conversion_fails() {
        let err = Unit::Seconds.convert(1.0, Unit::Euro).unwrap_err();
        assert!(err.to_string().contains("cannot convert"));
    }

    #[test]
    fn identity_conversion() {
        assert_eq!(Unit::Dbm.convert(-70.0, Unit::Dbm), Ok(-70.0));
    }

    #[test]
    fn canonical_units_are_fixed_points() {
        for u in [
            Unit::Milliseconds,
            Unit::RequestsPerSecond,
            Unit::KilobitsPerSecond,
            Unit::Ratio,
            Unit::Euro,
            Unit::Millijoules,
            Unit::Dbm,
            Unit::Dimensionless,
        ] {
            assert_eq!(u.canonical(), u);
            assert_eq!(u.to_canonical(3.25), 3.25);
        }
    }

    #[test]
    fn round_trip_preserves_value() {
        let v = Unit::Minutes.convert(7.0, Unit::Milliseconds).unwrap();
        let back = Unit::Milliseconds.convert(v, Unit::Minutes).unwrap();
        assert!((back - 7.0).abs() < 1e-9);
    }

    #[test]
    fn display_parse_round_trips() {
        for u in [
            Unit::Milliseconds,
            Unit::Seconds,
            Unit::Minutes,
            Unit::RequestsPerSecond,
            Unit::RequestsPerMinute,
            Unit::KilobitsPerSecond,
            Unit::MegabitsPerSecond,
            Unit::Ratio,
            Unit::Percent,
            Unit::Euro,
            Unit::Cent,
            Unit::Millijoules,
            Unit::Joules,
            Unit::Dbm,
            Unit::Dimensionless,
        ] {
            let parsed: Unit = u.to_string().parse().unwrap();
            assert_eq!(parsed, u);
        }
    }

    #[test]
    fn parse_rejects_unknown_symbols() {
        assert!("parsec".parse::<Unit>().is_err());
    }
}
