//! User QoS constraints (the `U = {u_i}` of the formal model).

use std::fmt;

use crate::{PropertyId, QosVector, Tendency};

/// A single global QoS constraint: a bound on one property, interpreted
/// through the property's [`Tendency`].
///
/// * `LowerBetter` property — satisfied when `value ≤ bound`
///   (e.g. *total response time ≤ 2 s*).
/// * `HigherBetter` property — satisfied when `value ≥ bound`
///   (e.g. *availability ≥ 0.95*).
///
/// A QoS vector that carries **no value** for the constrained property
/// violates the constraint: in an open environment an unknown quality
/// cannot be assumed satisfactory.
///
/// # Examples
///
/// ```
/// use qasom_qos::{Constraint, QosModel, QosVector, Tendency};
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
/// let c = Constraint::new(rt, Tendency::LowerBetter, 200.0);
///
/// let mut qos = QosVector::new();
/// qos.set(rt, 150.0);
/// assert!(c.satisfied_by(&qos));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    property: PropertyId,
    tendency: Tendency,
    bound: f64,
}

impl Constraint {
    /// Creates a constraint on `property` with the given tendency and bound.
    pub fn new(property: PropertyId, tendency: Tendency, bound: f64) -> Self {
        Constraint {
            property,
            tendency,
            bound,
        }
    }

    /// The constrained property.
    pub fn property(&self) -> PropertyId {
        self.property
    }

    /// The bound, in the property's canonical unit.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The tendency the bound is interpreted under.
    pub fn tendency(&self) -> Tendency {
        self.tendency
    }

    /// Whether a raw value satisfies the constraint.
    pub fn is_satisfied(&self, value: f64) -> bool {
        self.tendency.at_least_as_good(value, self.bound)
    }

    /// Whether a QoS vector satisfies the constraint. Missing values count
    /// as violations.
    pub fn satisfied_by(&self, qos: &QosVector) -> bool {
        qos.get(self.property).is_some_and(|v| self.is_satisfied(v))
    }

    /// Signed margin between `value` and the bound: positive when the
    /// constraint is satisfied, negative when violated, in canonical units.
    pub fn slack(&self, value: f64) -> f64 {
        match self.tendency {
            Tendency::LowerBetter => self.bound - value,
            Tendency::HigherBetter => value - self.bound,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.tendency {
            Tendency::LowerBetter => "<=",
            Tendency::HigherBetter => ">=",
        };
        write!(f, "{} {} {}", self.property, op, self.bound)
    }
}

/// The set of global QoS constraints attached to a user request.
///
/// At most one constraint per property is kept: adding a second constraint
/// on the same property *tightens* the set by keeping the stricter bound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// Creates an empty set (every QoS vector satisfies it).
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a constraint; if one already exists on the same property the
    /// stricter bound is kept.
    pub fn add(&mut self, constraint: Constraint) -> &mut Self {
        match self
            .constraints
            .iter_mut()
            .find(|c| c.property == constraint.property)
        {
            Some(existing) => {
                // The stricter bound is the harder one to satisfy: the
                // smaller for LowerBetter, the larger for HigherBetter.
                existing.bound = match existing.tendency {
                    Tendency::LowerBetter => existing.bound.min(constraint.bound),
                    Tendency::HigherBetter => existing.bound.max(constraint.bound),
                };
            }
            None => self.constraints.push(constraint),
        }
        self
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The constraint on `property`, if any.
    pub fn get(&self, property: PropertyId) -> Option<&Constraint> {
        self.constraints.iter().find(|c| c.property == property)
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Whether `qos` satisfies *all* constraints.
    pub fn satisfied_by(&self, qos: &QosVector) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(qos))
    }

    /// The constraints `qos` violates (missing values included).
    pub fn violations<'a>(&'a self, qos: &'a QosVector) -> impl Iterator<Item = &'a Constraint> {
        self.constraints.iter().filter(|c| !c.satisfied_by(qos))
    }

    /// The constrained properties.
    pub fn properties(&self) -> impl Iterator<Item = PropertyId> + '_ {
        self.constraints.iter().map(|c| c.property)
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        let mut set = ConstraintSet::new();
        for c in iter {
            set.add(c);
        }
        set
    }
}

impl<'a> IntoIterator for &'a ConstraintSet {
    type Item = &'a Constraint;
    type IntoIter = std::slice::Iter<'a, Constraint>;

    fn into_iter(self) -> Self::IntoIter {
        self.constraints.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PropertyId {
        PropertyId(i)
    }

    #[test]
    fn lower_better_is_upper_bound() {
        let c = Constraint::new(p(0), Tendency::LowerBetter, 100.0);
        assert!(c.is_satisfied(100.0));
        assert!(c.is_satisfied(20.0));
        assert!(!c.is_satisfied(101.0));
    }

    #[test]
    fn higher_better_is_lower_bound() {
        let c = Constraint::new(p(0), Tendency::HigherBetter, 0.95);
        assert!(c.is_satisfied(0.95));
        assert!(c.is_satisfied(0.99));
        assert!(!c.is_satisfied(0.9));
    }

    #[test]
    fn missing_property_violates() {
        let c = Constraint::new(p(0), Tendency::LowerBetter, 100.0);
        assert!(!c.satisfied_by(&QosVector::new()));
    }

    #[test]
    fn slack_sign_matches_satisfaction() {
        let c = Constraint::new(p(0), Tendency::HigherBetter, 0.9);
        assert!(c.slack(0.95) > 0.0);
        assert!(c.slack(0.85) < 0.0);
        assert_eq!(c.slack(0.9), 0.0);
    }

    #[test]
    fn duplicate_constraints_keep_stricter_bound() {
        let mut set = ConstraintSet::new();
        set.add(Constraint::new(p(0), Tendency::LowerBetter, 200.0));
        set.add(Constraint::new(p(0), Tendency::LowerBetter, 150.0));
        assert_eq!(set.len(), 1);
        assert_eq!(set.get(p(0)).unwrap().bound(), 150.0);

        let mut set = ConstraintSet::new();
        set.add(Constraint::new(p(1), Tendency::HigherBetter, 0.9));
        set.add(Constraint::new(p(1), Tendency::HigherBetter, 0.99));
        assert_eq!(set.get(p(1)).unwrap().bound(), 0.99);
    }

    #[test]
    fn set_satisfaction_requires_all() {
        let set: ConstraintSet = [
            Constraint::new(p(0), Tendency::LowerBetter, 100.0),
            Constraint::new(p(1), Tendency::HigherBetter, 0.9),
        ]
        .into_iter()
        .collect();

        let mut good = QosVector::new();
        good.set(p(0), 50.0);
        good.set(p(1), 0.95);
        assert!(set.satisfied_by(&good));

        let mut bad = good.clone();
        bad.set(p(1), 0.5);
        assert!(!set.satisfied_by(&bad));
        assert_eq!(set.violations(&bad).count(), 1);
    }

    #[test]
    fn empty_set_accepts_anything() {
        assert!(ConstraintSet::new().satisfied_by(&QosVector::new()));
    }

    #[test]
    fn display_shows_direction() {
        let c = Constraint::new(p(2), Tendency::LowerBetter, 10.0);
        assert_eq!(c.to_string(), "p2 <= 10");
    }
}
