//! QoS property definitions (the QoS *core* ontology layer).

use std::fmt;

use qasom_ontology::ConceptId;

use crate::Unit;

/// Opaque handle to a QoS property registered in a
/// [`QosModel`](crate::QosModel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyId(pub(crate) u32);

impl PropertyId {
    /// Index into the model's property table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from its table index. The inverse of
    /// [`PropertyId::index`]; persistence codecs use it to decode stored
    /// QoS vectors. The caller is responsible for pairing it with the
    /// model that produced the index.
    ///
    /// # Panics
    ///
    /// Panics when `i` exceeds the id width.
    pub fn from_index(i: usize) -> Self {
        // Properties register one at a time; a catalogue cannot
        // realistically approach the id width, but keep the bound loud.
        assert!(u32::try_from(i).is_ok(), "more than u32::MAX properties");
        PropertyId(i as u32)
    }
}

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Whether smaller or larger values of a property are preferable.
///
/// The tendency drives constraint satisfaction (`value ≤ bound` vs
/// `value ≥ bound`), normalisation direction and the pessimistic/optimistic
/// aggregation approaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tendency {
    /// Smaller is better (response time, price, energy…).
    LowerBetter,
    /// Larger is better (availability, throughput, reputation…).
    HigherBetter,
}

impl Tendency {
    /// The worse of two values under this tendency.
    pub fn worse(self, a: f64, b: f64) -> f64 {
        match self {
            Tendency::LowerBetter => a.max(b),
            Tendency::HigherBetter => a.min(b),
        }
    }

    /// The better of two values under this tendency.
    pub fn better(self, a: f64, b: f64) -> f64 {
        match self {
            Tendency::LowerBetter => a.min(b),
            Tendency::HigherBetter => a.max(b),
        }
    }

    /// Whether `a` is at least as good as `b`.
    pub fn at_least_as_good(self, a: f64, b: f64) -> bool {
        match self {
            Tendency::LowerBetter => a <= b,
            Tendency::HigherBetter => a >= b,
        }
    }
}

/// Category of a property in the QoS core ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Category {
    /// Timeliness and capacity (response time, throughput, bandwidth…).
    Performance,
    /// Availability, reliability, accuracy.
    Dependability,
    /// Monetary and energy cost.
    Cost,
    /// Confidentiality, integrity, authentication level.
    Security,
    /// Community feedback about a provider.
    Reputation,
    /// Transactional guarantees (atomicity/compensation support).
    Transaction,
    /// Anything registered by an application domain.
    Domain,
}

/// The architectural layer a property is measured at — the *end-to-end*
/// aspect of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Application-service level (advertised by providers).
    Service,
    /// Network level (links between nodes).
    Network,
    /// Device level (the node hosting a service).
    Device,
    /// User level (the vocabulary requests are phrased in).
    User,
}

/// Default aggregation operator of a property across a *sequence* of
/// activities (Table IV.1 of the original evaluation).
///
/// Pattern-specific aggregation (parallel, choice, loop) is derived from
/// this operator by the composition engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationOp {
    /// Values add up (response time, price, energy).
    Sum,
    /// Values multiply (availability, reliability — probabilities of
    /// independent successes).
    Product,
    /// The minimum dominates (throughput, bandwidth of a pipeline).
    Min,
    /// The maximum dominates (used for parallel response time).
    Max,
    /// The arithmetic mean is reported (reputation, encoding quality).
    Average,
}

/// Full definition of a QoS property: the record a
/// [`QosModel`](crate::QosModel) keeps per property.
#[derive(Debug, Clone)]
pub struct PropertyDef {
    pub(crate) name: String,
    pub(crate) concept: ConceptId,
    pub(crate) tendency: Tendency,
    pub(crate) unit: Unit,
    pub(crate) category: Category,
    pub(crate) layer: Layer,
    pub(crate) aggregation: AggregationOp,
}

impl PropertyDef {
    /// Human-readable property name (unique within the model).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ontology concept this property denotes.
    pub fn concept(&self) -> ConceptId {
        self.concept
    }

    /// Whether lower or higher values are better.
    pub fn tendency(&self) -> Tendency {
        self.tendency
    }

    /// Canonical unit values of this property are stored in.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Core-ontology category.
    pub fn category(&self) -> Category {
        self.category
    }

    /// Architectural layer the property is measured at.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// Default sequence-aggregation operator.
    pub fn aggregation(&self) -> AggregationOp {
        self.aggregation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worse_and_better_respect_tendency() {
        assert_eq!(Tendency::LowerBetter.worse(10.0, 20.0), 20.0);
        assert_eq!(Tendency::LowerBetter.better(10.0, 20.0), 10.0);
        assert_eq!(Tendency::HigherBetter.worse(0.9, 0.99), 0.9);
        assert_eq!(Tendency::HigherBetter.better(0.9, 0.99), 0.99);
    }

    #[test]
    fn at_least_as_good_is_reflexive() {
        for t in [Tendency::LowerBetter, Tendency::HigherBetter] {
            assert!(t.at_least_as_good(5.0, 5.0));
        }
    }

    #[test]
    fn at_least_as_good_orders_by_tendency() {
        assert!(Tendency::LowerBetter.at_least_as_good(5.0, 10.0));
        assert!(!Tendency::LowerBetter.at_least_as_good(10.0, 5.0));
        assert!(Tendency::HigherBetter.at_least_as_good(10.0, 5.0));
        assert!(!Tendency::HigherBetter.at_least_as_good(5.0, 10.0));
    }
}
