//! QoS value vectors.

use std::fmt;

use crate::PropertyId;

/// A sparse vector of QoS values, keyed by [`PropertyId`], always stored in
/// the property's canonical unit.
///
/// `QosVector` is the `QoS_{s_{i,k}}` of the original formalisation: the
/// QoS advertised by (or measured on) a service, and — after aggregation —
/// the QoS of a whole composition.
///
/// Entries are kept sorted by property id, which makes iteration
/// deterministic and merging linear.
///
/// # Examples
///
/// ```
/// use qasom_qos::{QosModel, QosVector};
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
///
/// let mut qos = QosVector::new();
/// qos.set(rt, 80.0);
/// assert_eq!(qos.get(rt), Some(80.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QosVector {
    entries: Vec<(PropertyId, f64)>,
}

impl QosVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        QosVector::default()
    }

    /// Number of properties carrying a value.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector carries no value.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value of `property`, if present.
    pub fn get(&self, property: PropertyId) -> Option<f64> {
        self.entries
            .binary_search_by_key(&property, |&(p, _)| p)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Sets (or replaces) the value of `property`, returning the previous
    /// value if there was one.
    pub fn set(&mut self, property: PropertyId, value: f64) -> Option<f64> {
        match self.entries.binary_search_by_key(&property, |&(p, _)| p) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (property, value));
                None
            }
        }
    }

    /// Removes `property`, returning its value if it was present.
    pub fn remove(&mut self, property: PropertyId) -> Option<f64> {
        self.entries
            .binary_search_by_key(&property, |&(p, _)| p)
            .ok()
            .map(|i| self.entries.remove(i).1)
    }

    /// Whether the vector carries a value for `property`.
    pub fn contains(&self, property: PropertyId) -> bool {
        self.get(property).is_some()
    }

    /// Iterates over `(property, value)` pairs in property-id order.
    pub fn iter(&self) -> impl Iterator<Item = (PropertyId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The property ids carrying a value, in order.
    pub fn properties(&self) -> impl Iterator<Item = PropertyId> + '_ {
        self.entries.iter().map(|&(p, _)| p)
    }

    /// Merges `other` into `self`; on conflict the value chosen by
    /// `combine(self_value, other_value)` wins.
    pub fn merge_with(&mut self, other: &QosVector, mut combine: impl FnMut(f64, f64) -> f64) {
        for (p, v) in other.iter() {
            match self.get(p) {
                Some(cur) => {
                    self.set(p, combine(cur, v));
                }
                None => {
                    self.set(p, v);
                }
            }
        }
    }
}

impl FromIterator<(PropertyId, f64)> for QosVector {
    fn from_iter<T: IntoIterator<Item = (PropertyId, f64)>>(iter: T) -> Self {
        let mut v = QosVector::new();
        for (p, val) in iter {
            v.set(p, val);
        }
        v
    }
}

impl Extend<(PropertyId, f64)> for QosVector {
    fn extend<T: IntoIterator<Item = (PropertyId, f64)>>(&mut self, iter: T) {
        for (p, val) in iter {
            self.set(p, val);
        }
    }
}

impl fmt::Display for QosVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (p, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PropertyId {
        PropertyId(i)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = QosVector::new();
        assert_eq!(v.set(p(3), 1.5), None);
        assert_eq!(v.get(p(3)), Some(1.5));
        assert_eq!(v.get(p(4)), None);
    }

    #[test]
    fn set_replaces_and_returns_previous() {
        let mut v = QosVector::new();
        v.set(p(1), 1.0);
        assert_eq!(v.set(p(1), 2.0), Some(1.0));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn entries_stay_sorted() {
        let mut v = QosVector::new();
        for i in [5u32, 1, 3, 2, 4] {
            v.set(p(i), f64::from(i));
        }
        let ids: Vec<_> = v.properties().collect();
        assert_eq!(ids, vec![p(1), p(2), p(3), p(4), p(5)]);
    }

    #[test]
    fn remove_deletes_entry() {
        let mut v: QosVector = [(p(1), 1.0), (p(2), 2.0)].into_iter().collect();
        assert_eq!(v.remove(p(1)), Some(1.0));
        assert_eq!(v.remove(p(1)), None);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn merge_with_prefers_combined_value() {
        let mut a: QosVector = [(p(1), 10.0), (p(2), 5.0)].into_iter().collect();
        let b: QosVector = [(p(2), 7.0), (p(3), 1.0)].into_iter().collect();
        a.merge_with(&b, f64::max);
        assert_eq!(a.get(p(1)), Some(10.0));
        assert_eq!(a.get(p(2)), Some(7.0));
        assert_eq!(a.get(p(3)), Some(1.0));
    }

    #[test]
    fn display_is_nonempty_for_empty_vector() {
        assert_eq!(QosVector::new().to_string(), "{}");
    }

    #[test]
    fn from_iterator_deduplicates_keeping_last() {
        let v: QosVector = [(p(1), 1.0), (p(1), 9.0)].into_iter().collect();
        assert_eq!(v.get(p(1)), Some(9.0));
        assert_eq!(v.len(), 1);
    }
}
