//! Min–max normalisation of QoS values.

use crate::{PropertyId, QosModel, QosVector, Tendency};

/// Per-property min–max statistics over a candidate set, used to map raw
/// QoS values onto `[0, 1]` scores where `1` is always *best*.
///
/// This is the normalisation step of the SAW utility of the original
/// formalisation: for a lower-is-better property the score is
/// `(max − v) / (max − min)`, for a higher-is-better property
/// `(v − min) / (max − min)`. When all candidates agree on a value
/// (`max = min`, including single-candidate pools) the ratio would be
/// `0/0`; every candidate scores the paper's neutral `0.5` instead, so
/// no `NaN` ever reaches the K-means clustering downstream.
///
/// # Examples
///
/// ```
/// use qasom_qos::{Normalizer, QosModel, QosVector};
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
/// let mut a = QosVector::new();
/// a.set(rt, 100.0);
/// let mut b = QosVector::new();
/// b.set(rt, 300.0);
///
/// let norm = Normalizer::fit(&model, [&a, &b]);
/// assert_eq!(norm.score(rt, 100.0), 1.0); // fastest is best
/// assert_eq!(norm.score(rt, 300.0), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Normalizer {
    stats: Vec<(PropertyId, Tendency, f64, f64)>,
}

impl Normalizer {
    /// Fits normalisation bounds over a set of QoS vectors.
    pub fn fit<'a>(model: &QosModel, candidates: impl IntoIterator<Item = &'a QosVector>) -> Self {
        let mut stats: Vec<(PropertyId, Tendency, f64, f64)> = Vec::new();
        for qos in candidates {
            for (p, v) in qos.iter() {
                if !v.is_finite() {
                    // Non-finite values (unreachable paths, failed
                    // measurements) must not poison the bounds; scoring
                    // them later still clamps to the worst score.
                    continue;
                }
                match stats.binary_search_by_key(&p, |&(id, ..)| id) {
                    Ok(i) => {
                        stats[i].2 = stats[i].2.min(v);
                        stats[i].3 = stats[i].3.max(v);
                    }
                    Err(i) => stats.insert(i, (p, model.tendency(p), v, v)),
                }
            }
        }
        Normalizer { stats }
    }

    /// Extends the fitted bounds so that `value` falls inside them
    /// (non-finite values are ignored).
    pub fn include(&mut self, model: &QosModel, property: PropertyId, value: f64) {
        if !value.is_finite() {
            return;
        }
        match self.stats.binary_search_by_key(&property, |&(id, ..)| id) {
            Ok(i) => {
                self.stats[i].2 = self.stats[i].2.min(value);
                self.stats[i].3 = self.stats[i].3.max(value);
            }
            Err(i) => self
                .stats
                .insert(i, (property, model.tendency(property), value, value)),
        }
    }

    /// The fitted `(min, max)` bounds for `property`, if it was observed.
    pub fn bounds(&self, property: PropertyId) -> Option<(f64, f64)> {
        self.stats
            .binary_search_by_key(&property, |&(id, ..)| id)
            .ok()
            .map(|i| (self.stats[i].2, self.stats[i].3))
    }

    /// Normalised score of `value` for `property`, in `[0, 1]`, `1` best.
    ///
    /// Values outside the fitted bounds are clamped; unobserved properties
    /// score a neutral `1` (no candidate differentiates on them).
    pub fn score(&self, property: PropertyId, value: f64) -> f64 {
        if !value.is_finite() {
            // Unknown or unusable quality is the worst quality.
            return 0.0;
        }
        let Ok(i) = self.stats.binary_search_by_key(&property, |&(id, ..)| id) else {
            return 1.0;
        };
        let (_, tendency, min, max) = self.stats[i];
        if max == min {
            // Degenerate range: the min–max ratio would be 0/0. Score the
            // paper's neutral 0.5 — the property cannot differentiate
            // candidates, and NaN must never leak into K-means centroids.
            return 0.5;
        }
        let raw = match tendency {
            Tendency::LowerBetter => (max - value) / (max - min),
            Tendency::HigherBetter => (value - min) / (max - min),
        };
        raw.clamp(0.0, 1.0)
    }

    /// Normalises a whole vector; properties the vector lacks are skipped.
    pub fn score_vector(&self, qos: &QosVector) -> QosVector {
        qos.iter().map(|(p, v)| (p, self.score(p, v))).collect()
    }

    /// Properties the normaliser observed.
    pub fn properties(&self) -> impl Iterator<Item = PropertyId> + '_ {
        self.stats.iter().map(|&(p, ..)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (QosModel, PropertyId, PropertyId) {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        (m, rt, av)
    }

    fn v(pairs: &[(PropertyId, f64)]) -> QosVector {
        pairs.iter().copied().collect()
    }

    #[test]
    fn direction_depends_on_tendency() {
        let (m, rt, av) = setup();
        let a = v(&[(rt, 100.0), (av, 0.9)]);
        let b = v(&[(rt, 200.0), (av, 0.99)]);
        let n = Normalizer::fit(&m, [&a, &b]);
        assert_eq!(n.score(rt, 100.0), 1.0);
        assert_eq!(n.score(rt, 200.0), 0.0);
        assert_eq!(n.score(av, 0.99), 1.0);
        assert_eq!(n.score(av, 0.9), 0.0);
    }

    #[test]
    fn degenerate_range_scores_neutral() {
        let (m, rt, _) = setup();
        let a = v(&[(rt, 100.0)]);
        let n = Normalizer::fit(&m, [&a, &a]);
        // min == max used to divide 0/0; the score must be the neutral
        // 0.5, never NaN.
        let score = n.score(rt, 100.0);
        assert!(score.is_finite());
        assert_eq!(score, 0.5);
    }

    #[test]
    fn single_candidate_pool_scores_neutral_not_nan() {
        let (m, rt, av) = setup();
        let only = v(&[(rt, 80.0), (av, 0.97)]);
        let n = Normalizer::fit(&m, [&only]);
        for (p, raw) in only.iter() {
            let score = n.score(p, raw);
            assert!(score.is_finite(), "NaN leaked for {p:?}");
            assert_eq!(score, 0.5);
        }
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let (m, rt, _) = setup();
        let a = v(&[(rt, 100.0)]);
        let b = v(&[(rt, 200.0)]);
        let n = Normalizer::fit(&m, [&a, &b]);
        assert_eq!(n.score(rt, 50.0), 1.0);
        assert_eq!(n.score(rt, 500.0), 0.0);
    }

    #[test]
    fn unobserved_property_is_neutral() {
        let (m, rt, av) = setup();
        let a = v(&[(rt, 100.0)]);
        let n = Normalizer::fit(&m, [&a]);
        assert_eq!(n.score(av, 0.5), 1.0);
    }

    #[test]
    fn include_extends_bounds() {
        let (m, rt, _) = setup();
        let a = v(&[(rt, 100.0)]);
        let mut n = Normalizer::fit(&m, [&a]);
        n.include(&m, rt, 300.0);
        assert_eq!(n.bounds(rt), Some((100.0, 300.0)));
        assert_eq!(n.score(rt, 200.0), 0.5);
    }

    #[test]
    fn score_vector_maps_all_entries() {
        let (m, rt, av) = setup();
        let a = v(&[(rt, 100.0), (av, 0.9)]);
        let b = v(&[(rt, 300.0), (av, 0.99)]);
        let n = Normalizer::fit(&m, [&a, &b]);
        let scored = n.score_vector(&v(&[(rt, 200.0), (av, 0.945)]));
        assert!((scored.get(rt).unwrap() - 0.5).abs() < 1e-9);
        assert!((scored.get(av).unwrap() - 0.5).abs() < 1e-9);
    }
}
