//! End-to-end QoS composition: service-level × infrastructure-level →
//! user-perceived QoS.
//!
//! The model treats QoS *end to end*: what the user perceives is the QoS of
//! the application service degraded by the network path and the hosting
//! device. [`EndToEnd`] encodes that relationship as a small rule system,
//! mirroring the formulations of end-to-end models such as QoPS
//! (user-perceived delay = service delay + network delay, user-perceived
//! availability = service availability × path delivery ratio, …).

use crate::{PropertyId, QosModel, QosVector};

/// One end-to-end composition rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EndToEndRule {
    /// `target += factor × source` — additive degradation (latency).
    AddScaled {
        /// Service-layer property being degraded.
        target: PropertyId,
        /// Infrastructure-layer property causing the degradation.
        source: PropertyId,
        /// Multiplier applied to the source (e.g. `2.0` for a
        /// request/response round trip over one link).
        factor: f64,
    },
    /// `target ×= (1 − source)` — multiplicative degradation by a failure
    /// probability (packet loss degrading availability).
    MulComplement {
        /// Service-layer property being degraded.
        target: PropertyId,
        /// Infrastructure-layer probability of failure.
        source: PropertyId,
    },
    /// `target ×= source` — multiplicative composition of success
    /// probabilities.
    Mul {
        /// Service-layer property being degraded.
        target: PropertyId,
        /// Infrastructure-layer success probability.
        source: PropertyId,
    },
    /// `target = min(target, source)` — the infrastructure caps the
    /// service (bandwidth capping throughput expressed in the same unit).
    Min {
        /// Service-layer property being capped.
        target: PropertyId,
        /// Infrastructure-layer cap.
        source: PropertyId,
    },
}

impl EndToEndRule {
    fn apply(self, perceived: &mut QosVector, infra: &QosVector) {
        let (target, source) = match self {
            EndToEndRule::AddScaled { target, source, .. }
            | EndToEndRule::MulComplement { target, source }
            | EndToEndRule::Mul { target, source }
            | EndToEndRule::Min { target, source } => (target, source),
        };
        let (Some(t), Some(s)) = (perceived.get(target), infra.get(source)) else {
            return;
        };
        let new = match self {
            EndToEndRule::AddScaled { factor, .. } => t + factor * s,
            EndToEndRule::MulComplement { .. } => t * (1.0 - s),
            EndToEndRule::Mul { .. } => t * s,
            EndToEndRule::Min { .. } => t.min(s),
        };
        perceived.set(target, new);
    }
}

/// A rule system deriving user-perceived QoS from service QoS and the QoS
/// of the infrastructure path delivering it.
///
/// # Examples
///
/// ```
/// use qasom_qos::{EndToEnd, QosModel, QosVector};
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
/// let lat = model.property("NetworkLatency").unwrap();
///
/// let mut service = QosVector::new();
/// service.set(rt, 100.0);
/// let mut infra = QosVector::new();
/// infra.set(lat, 25.0);
///
/// let e2e = EndToEnd::standard(&model);
/// let perceived = e2e.perceive(&service, &infra);
/// // 100 ms service time + 2 × 25 ms network round trip.
/// assert_eq!(perceived.get(rt), Some(150.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EndToEnd {
    rules: Vec<EndToEndRule>,
}

impl EndToEnd {
    /// An empty rule system (perceived QoS = service QoS).
    pub fn new() -> Self {
        EndToEnd::default()
    }

    /// The standard rules over [`QosModel::standard`]:
    ///
    /// * `ResponseTime += 2 × NetworkLatency` (request + response hop);
    /// * `Availability ×= (1 − PacketLoss)`;
    /// * `Reliability ×= (1 − PacketLoss)`.
    pub fn standard(model: &QosModel) -> Self {
        let mut rules = Vec::new();
        let p = |name: &str| model.property(name);
        if let (Some(rt), Some(lat)) = (p("ResponseTime"), p("NetworkLatency")) {
            rules.push(EndToEndRule::AddScaled {
                target: rt,
                source: lat,
                factor: 2.0,
            });
        }
        if let Some(loss) = p("PacketLoss") {
            for target in ["Availability", "Reliability"].iter().filter_map(|n| p(n)) {
                rules.push(EndToEndRule::MulComplement {
                    target,
                    source: loss,
                });
            }
        }
        EndToEnd { rules }
    }

    /// Appends a rule; rules apply in insertion order.
    pub fn push(&mut self, rule: EndToEndRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The registered rules.
    pub fn rules(&self) -> &[EndToEndRule] {
        &self.rules
    }

    /// Computes the perceived QoS of `service` when delivered over a path
    /// with infrastructure QoS `infra`.
    ///
    /// Rules whose target is absent from `service` or whose source is
    /// absent from `infra` are skipped: unknown infrastructure degrades
    /// nothing (it is accounted for by the monitoring layer instead).
    pub fn perceive(&self, service: &QosVector, infra: &QosVector) -> QosVector {
        let mut perceived = service.clone();
        for rule in &self.rules {
            rule.apply(&mut perceived, infra);
        }
        perceived
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (QosModel, EndToEnd) {
        let m = QosModel::standard();
        let e = EndToEnd::standard(&m);
        (m, e)
    }

    #[test]
    fn latency_adds_round_trip() {
        let (m, e) = setup();
        let rt = m.property("ResponseTime").unwrap();
        let lat = m.property("NetworkLatency").unwrap();
        let mut svc = QosVector::new();
        svc.set(rt, 100.0);
        let mut infra = QosVector::new();
        infra.set(lat, 10.0);
        assert_eq!(e.perceive(&svc, &infra).get(rt), Some(120.0));
    }

    #[test]
    fn packet_loss_degrades_availability_and_reliability() {
        let (m, e) = setup();
        let av = m.property("Availability").unwrap();
        let rel = m.property("Reliability").unwrap();
        let loss = m.property("PacketLoss").unwrap();
        let mut svc = QosVector::new();
        svc.set(av, 0.99);
        svc.set(rel, 0.98);
        let mut infra = QosVector::new();
        infra.set(loss, 0.1);
        let perceived = e.perceive(&svc, &infra);
        assert!((perceived.get(av).unwrap() - 0.891).abs() < 1e-9);
        assert!((perceived.get(rel).unwrap() - 0.882).abs() < 1e-9);
    }

    #[test]
    fn missing_infra_leaves_service_qos_untouched() {
        let (m, e) = setup();
        let rt = m.property("ResponseTime").unwrap();
        let mut svc = QosVector::new();
        svc.set(rt, 100.0);
        let perceived = e.perceive(&svc, &QosVector::new());
        assert_eq!(perceived.get(rt), Some(100.0));
    }

    #[test]
    fn min_rule_caps_target() {
        let m = QosModel::standard();
        let thr = m.property("Throughput").unwrap();
        let bw = m.property("Bandwidth").unwrap();
        let mut e = EndToEnd::new();
        e.push(EndToEndRule::Min {
            target: thr,
            source: bw,
        });
        let mut svc = QosVector::new();
        svc.set(thr, 50.0);
        let mut infra = QosVector::new();
        infra.set(bw, 20.0);
        assert_eq!(e.perceive(&svc, &infra).get(thr), Some(20.0));
    }

    #[test]
    fn mul_rule_composes_probabilities() {
        let m = QosModel::standard();
        let av = m.property("Availability").unwrap();
        let bat = m.property("BatteryLevel").unwrap();
        let mut e = EndToEnd::new();
        e.push(EndToEndRule::Mul {
            target: av,
            source: bat,
        });
        let mut svc = QosVector::new();
        svc.set(av, 0.9);
        let mut infra = QosVector::new();
        infra.set(bat, 0.5);
        assert_eq!(e.perceive(&svc, &infra).get(av), Some(0.45));
    }

    #[test]
    fn rules_apply_in_order() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let lat = m.property("NetworkLatency").unwrap();
        let mut e = EndToEnd::new();
        e.push(EndToEndRule::AddScaled {
            target: rt,
            source: lat,
            factor: 1.0,
        });
        e.push(EndToEndRule::AddScaled {
            target: rt,
            source: lat,
            factor: 1.0,
        });
        let mut svc = QosVector::new();
        svc.set(rt, 10.0);
        let mut infra = QosVector::new();
        infra.set(lat, 5.0);
        assert_eq!(e.perceive(&svc, &infra).get(rt), Some(20.0));
    }
}
