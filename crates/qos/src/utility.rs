//! SAW (simple additive weighting) utility.
//!
//! Services and compositions are ranked by the weighted sum of their
//! normalised QoS scores — the `f_{s_{i,k}} = Σ_j w_j · norm_j(q_j)` of the
//! original formalisation. Weights come from user [`Preferences`]; scores
//! come from a fitted [`Normalizer`].

use crate::{Normalizer, PropertyId, QosVector};

/// User preferences: a weight per QoS property (the `W = {w_i}` of the
/// formal model), normalised to sum to `1`.
///
/// # Examples
///
/// ```
/// use qasom_qos::{Preferences, QosModel};
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
/// let av = model.property("Availability").unwrap();
///
/// let prefs = Preferences::from_weights([(rt, 3.0), (av, 1.0)]);
/// assert!((prefs.weight(rt) - 0.75).abs() < 1e-12);
/// assert!((prefs.weight(av) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Preferences {
    weights: Vec<(PropertyId, f64)>,
}

impl Preferences {
    /// Builds preferences from raw (non-negative) weights; they are
    /// normalised to sum to `1`. Non-positive weights are dropped.
    pub fn from_weights(weights: impl IntoIterator<Item = (PropertyId, f64)>) -> Self {
        let mut ws: Vec<(PropertyId, f64)> = weights
            .into_iter()
            .filter(|&(_, w)| w > 0.0 && w.is_finite())
            .collect();
        ws.sort_by_key(|&(p, _)| p);
        ws.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        let total: f64 = ws.iter().map(|&(_, w)| w).sum();
        if total > 0.0 {
            for (_, w) in &mut ws {
                *w /= total;
            }
        }
        Preferences { weights: ws }
    }

    /// Equal weights over the given properties.
    pub fn uniform(properties: impl IntoIterator<Item = PropertyId>) -> Self {
        Preferences::from_weights(properties.into_iter().map(|p| (p, 1.0)))
    }

    /// The normalised weight of `property` (`0` when unweighted).
    pub fn weight(&self, property: PropertyId) -> f64 {
        self.weights
            .binary_search_by_key(&property, |&(p, _)| p)
            .ok()
            .map_or(0.0, |i| self.weights[i].1)
    }

    /// Iterates over `(property, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PropertyId, f64)> + '_ {
        self.weights.iter().copied()
    }

    /// The weighted properties.
    pub fn properties(&self) -> impl Iterator<Item = PropertyId> + '_ {
        self.weights.iter().map(|&(p, _)| p)
    }

    /// Number of weighted properties.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether no property carries weight.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

impl FromIterator<(PropertyId, f64)> for Preferences {
    fn from_iter<T: IntoIterator<Item = (PropertyId, f64)>>(iter: T) -> Self {
        Preferences::from_weights(iter)
    }
}

/// SAW utility of a QoS vector: `Σ_j w_j · score_j` over the weighted
/// properties, in `[0, 1]` (higher is better).
///
/// A property the vector carries **no value** for scores `0` — an unknown
/// quality cannot contribute utility.
pub fn utility(qos: &QosVector, normalizer: &Normalizer, preferences: &Preferences) -> f64 {
    preferences
        .iter()
        .map(|(p, w)| match qos.get(p) {
            Some(v) => w * normalizer.score(p, v),
            None => 0.0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosModel;

    fn v(pairs: &[(PropertyId, f64)]) -> QosVector {
        pairs.iter().copied().collect()
    }

    #[test]
    fn weights_are_normalised() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let p = Preferences::from_weights([(rt, 2.0), (av, 2.0)]);
        assert_eq!(p.weight(rt), 0.5);
        assert_eq!(p.weight(av), 0.5);
    }

    #[test]
    fn duplicate_weights_accumulate() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let p = Preferences::from_weights([(rt, 1.0), (rt, 1.0), (av, 2.0)]);
        assert_eq!(p.weight(rt), 0.5);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn non_positive_weights_are_dropped() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let p = Preferences::from_weights([(rt, -1.0), (av, 0.0)]);
        assert!(p.is_empty());
    }

    #[test]
    fn utility_is_weighted_sum_of_scores() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let best = v(&[(rt, 100.0), (av, 0.99)]);
        let worst = v(&[(rt, 300.0), (av, 0.9)]);
        let n = Normalizer::fit(&m, [&best, &worst]);
        let p = Preferences::uniform([rt, av]);
        assert_eq!(utility(&best, &n, &p), 1.0);
        assert_eq!(utility(&worst, &n, &p), 0.0);
        let mid = v(&[(rt, 200.0), (av, 0.945)]);
        assert!((utility(&mid, &n, &p) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_property_scores_zero() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let a = v(&[(rt, 100.0), (av, 0.9)]);
        let b = v(&[(rt, 200.0), (av, 0.99)]);
        let n = Normalizer::fit(&m, [&a, &b]);
        let p = Preferences::uniform([rt, av]);
        let partial = v(&[(rt, 100.0)]);
        assert_eq!(utility(&partial, &n, &p), 0.5);
    }

    #[test]
    fn utility_stays_in_unit_interval() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let a = v(&[(rt, 100.0)]);
        let b = v(&[(rt, 900.0)]);
        let n = Normalizer::fit(&m, [&a, &b]);
        let p = Preferences::uniform([rt]);
        for val in [0.0, 100.0, 500.0, 900.0, 2000.0] {
            let u = utility(&v(&[(rt, val)]), &n, &p);
            assert!((0.0..=1.0).contains(&u));
        }
    }
}
