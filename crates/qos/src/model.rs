//! The QoS model: property catalogue + alignment ontology.

use std::collections::HashMap;
use std::fmt;

use qasom_ontology::{ConceptId, Iri, MatchDegree, Ontology, OntologyBuilder, OntologyError};

use crate::{AggregationOp, Category, Constraint, Layer, PropertyDef, PropertyId, Tendency, Unit};

/// Errors raised while building or querying a [`QosModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QosModelError {
    /// Two properties were registered under the same name.
    DuplicateProperty(String),
    /// A referenced property name is not part of the model.
    UnknownProperty(String),
    /// The underlying ontology rejected the vocabulary.
    Ontology(OntologyError),
}

impl fmt::Display for QosModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosModelError::DuplicateProperty(n) => {
                write!(f, "QoS property {n:?} registered twice")
            }
            QosModelError::UnknownProperty(n) => write!(f, "unknown QoS property {n:?}"),
            QosModelError::Ontology(e) => write!(f, "QoS ontology error: {e}"),
        }
    }
}

impl std::error::Error for QosModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QosModelError::Ontology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OntologyError> for QosModelError {
    fn from(e: OntologyError) -> Self {
        QosModelError::Ontology(e)
    }
}

/// Declarative description of a QoS property, consumed by
/// [`QosModelBuilder::add`].
///
/// Unspecified fields default to: higher-is-better tendency, dimensionless
/// unit, [`Category::Domain`], [`Layer::Service`], average aggregation, the
/// `qos` namespace, category concept as taxonomy parent.
///
/// # Examples
///
/// ```
/// use qasom_qos::{AggregationOp, Category, PropertySpec, Tendency, Unit};
///
/// let spec = PropertySpec::new("DeliveryDelay")
///     .tendency(Tendency::LowerBetter)
///     .unit(Unit::Seconds)
///     .category(Category::Performance)
///     .aggregation(AggregationOp::Sum);
/// assert_eq!(spec.name(), "DeliveryDelay");
/// ```
#[derive(Debug, Clone)]
pub struct PropertySpec {
    name: String,
    namespace: String,
    tendency: Tendency,
    unit: Unit,
    category: Category,
    layer: Layer,
    aggregation: AggregationOp,
    parent: Option<String>,
    equivalent_to: Vec<String>,
}

impl PropertySpec {
    /// Starts a spec for a property called `name` (unique in the model).
    pub fn new(name: impl Into<String>) -> Self {
        PropertySpec {
            name: name.into(),
            namespace: "qos".to_owned(),
            tendency: Tendency::HigherBetter,
            unit: Unit::Dimensionless,
            category: Category::Domain,
            layer: Layer::Service,
            aggregation: AggregationOp::Average,
            parent: None,
            equivalent_to: Vec::new(),
        }
    }

    /// The property name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the vocabulary namespace of the property's concept.
    pub fn namespace(mut self, ns: impl Into<String>) -> Self {
        self.namespace = ns.into();
        self
    }

    /// Sets the tendency (default: higher is better).
    pub fn tendency(mut self, t: Tendency) -> Self {
        self.tendency = t;
        self
    }

    /// Sets the canonical unit. The value is stored after conversion to the
    /// unit's canonical form, so e.g. `Unit::Seconds` behaves as
    /// milliseconds internally.
    pub fn unit(mut self, u: Unit) -> Self {
        self.unit = u.canonical();
        self
    }

    /// Sets the core-ontology category (default: [`Category::Domain`]).
    pub fn category(mut self, c: Category) -> Self {
        self.category = c;
        self
    }

    /// Sets the measurement layer (default: [`Layer::Service`]).
    pub fn layer(mut self, l: Layer) -> Self {
        self.layer = l;
        self
    }

    /// Sets the default sequence-aggregation operator.
    pub fn aggregation(mut self, a: AggregationOp) -> Self {
        self.aggregation = a;
        self
    }

    /// Places the property's concept under another *property's* concept in
    /// the taxonomy instead of under its category concept.
    pub fn subproperty_of(mut self, parent_property: impl Into<String>) -> Self {
        self.parent = Some(parent_property.into());
        self
    }

    /// Declares this property semantically equivalent to an existing one
    /// (cross-vocabulary alignment, e.g. `user#Delay` ≡ `qos#ResponseTime`).
    pub fn equivalent_to(mut self, property: impl Into<String>) -> Self {
        self.equivalent_to.push(property.into());
        self
    }
}

/// Builds a [`QosModel`]: core scaffold + registered properties.
#[derive(Debug)]
pub struct QosModelBuilder {
    onto: OntologyBuilder,
    root: ConceptId,
    category_concepts: Vec<(Category, ConceptId)>,
    specs: Vec<(PropertySpec, ConceptId)>,
    by_name: HashMap<String, usize>,
    error: Option<QosModelError>,
}

impl Default for QosModelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl QosModelBuilder {
    /// Creates a builder pre-populated with the QoS *core* scaffold
    /// (the `Quality` root and its category concepts) but no properties.
    pub fn new() -> Self {
        let mut onto = OntologyBuilder::new("qos");
        let root = onto.concept("Quality");
        let category_concepts = CATEGORY_CONCEPTS
            .iter()
            .map(|&(name, cat)| (cat, onto.subconcept(name, root)))
            .collect();
        QosModelBuilder {
            onto,
            root,
            category_concepts,
            specs: Vec::new(),
            by_name: HashMap::new(),
            error: None,
        }
    }

    /// Registers a property, returning its future id.
    ///
    /// Errors (duplicate names, unknown parents) are deferred to
    /// [`QosModelBuilder::build`] so specs can be chained fluently.
    pub fn add(&mut self, spec: PropertySpec) -> PropertyId {
        let id = PropertyId::from_index(self.specs.len());
        if self.by_name.contains_key(&spec.name) {
            self.error
                .get_or_insert(QosModelError::DuplicateProperty(spec.name.clone()));
            return id;
        }

        let parent_concept = match &spec.parent {
            Some(parent_name) => match self.by_name.get(parent_name) {
                Some(&idx) => self.specs[idx].1,
                None => {
                    self.error
                        .get_or_insert(QosModelError::UnknownProperty(parent_name.clone()));
                    self.root
                }
            },
            // Every current category has a scaffold concept; a variant
            // added under `#[non_exhaustive]` without one parents under
            // the `Quality` root rather than panicking mid-registration.
            None => self
                .category_concepts
                .iter()
                .find(|&&(cat, _)| cat == spec.category)
                .map_or(self.root, |&(_, concept)| concept),
        };

        let iri = Iri::new(spec.namespace.clone(), spec.name.clone());
        let concept = self.onto.subconcept_iri(iri, parent_concept);

        for eq_name in spec.equivalent_to.clone() {
            match self.by_name.get(&eq_name) {
                Some(&idx) => {
                    let other = self.specs[idx].1;
                    self.onto.equivalent(concept, other);
                }
                None => {
                    self.error
                        .get_or_insert(QosModelError::UnknownProperty(eq_name));
                }
            }
        }

        self.by_name.insert(spec.name.clone(), self.specs.len());
        self.specs.push((spec, concept));
        id
    }

    /// Finalises the model.
    ///
    /// # Errors
    ///
    /// Reports the first deferred registration error, or an ontology error
    /// if the declared taxonomy is ill-formed.
    pub fn build(self) -> Result<QosModel, QosModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let ontology = self.onto.build()?;
        let mut props = Vec::with_capacity(self.specs.len());
        let mut by_name = HashMap::new();
        let mut by_concept = HashMap::new();
        for (i, (spec, concept)) in self.specs.into_iter().enumerate() {
            let id = PropertyId::from_index(i);
            by_name.insert(spec.name.clone(), id);
            by_concept.insert(concept, id);
            props.push(PropertyDef {
                name: spec.name,
                concept,
                tendency: spec.tendency,
                unit: spec.unit,
                category: spec.category,
                layer: spec.layer,
                aggregation: spec.aggregation,
            });
        }
        Ok(QosModel {
            ontology,
            props,
            by_name,
            by_concept,
        })
    }
}

const CATEGORY_CONCEPTS: &[(&str, Category)] = &[
    ("Performance", Category::Performance),
    ("Dependability", Category::Dependability),
    ("Cost", Category::Cost),
    ("Security", Category::Security),
    ("Reputation", Category::Reputation),
    ("Transaction", Category::Transaction),
    ("Domain", Category::Domain),
];

/// The semantic end-to-end QoS model: a property catalogue backed by an
/// alignment [`Ontology`].
///
/// Obtain the reference vocabulary with [`QosModel::standard`], or build a
/// custom one with [`QosModelBuilder`]. The standard vocabulary covers the
/// three measured layers of the original model (service, network, device)
/// plus the user layer aligned onto them through ontology equivalences.
#[derive(Debug, Clone)]
pub struct QosModel {
    ontology: Ontology,
    props: Vec<PropertyDef>,
    by_name: HashMap<String, PropertyId>,
    by_concept: HashMap<ConceptId, PropertyId>,
}

impl QosModel {
    /// Builds the standard QASOM vocabulary.
    ///
    /// | Layer | Properties |
    /// |---|---|
    /// | Service | ResponseTime, Throughput, Availability, Reliability, Accuracy, Price, EnergyCost, SecurityLevel, Reputation, EncodingQuality |
    /// | Network | NetworkLatency, Bandwidth, Jitter, PacketLoss, SignalStrength |
    /// | Device | BatteryLevel, CpuLoad, MemoryAvailable |
    /// | User | Delay (≡ ResponseTime), TotalPrice (≡ Price), Trustworthiness (≡ Reputation) |
    pub fn standard() -> Self {
        let mut b = QosModelBuilder::new();

        // Service layer.
        b.add(
            PropertySpec::new("ResponseTime")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Milliseconds)
                .category(Category::Performance)
                .aggregation(AggregationOp::Sum),
        );
        b.add(
            PropertySpec::new("Throughput")
                .unit(Unit::RequestsPerSecond)
                .category(Category::Performance)
                .aggregation(AggregationOp::Min),
        );
        b.add(
            PropertySpec::new("Availability")
                .unit(Unit::Ratio)
                .category(Category::Dependability)
                .aggregation(AggregationOp::Product),
        );
        b.add(
            PropertySpec::new("Reliability")
                .unit(Unit::Ratio)
                .category(Category::Dependability)
                .aggregation(AggregationOp::Product),
        );
        b.add(
            PropertySpec::new("Accuracy")
                .unit(Unit::Ratio)
                .category(Category::Dependability)
                .aggregation(AggregationOp::Average),
        );
        b.add(
            PropertySpec::new("Price")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Euro)
                .category(Category::Cost)
                .aggregation(AggregationOp::Sum),
        );
        b.add(
            PropertySpec::new("EnergyCost")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Millijoules)
                .category(Category::Cost)
                .aggregation(AggregationOp::Sum),
        );
        b.add(
            PropertySpec::new("SecurityLevel")
                .category(Category::Security)
                .aggregation(AggregationOp::Min),
        );
        b.add(
            PropertySpec::new("Reputation")
                .category(Category::Reputation)
                .aggregation(AggregationOp::Average),
        );
        b.add(
            PropertySpec::new("EncodingQuality")
                .category(Category::Performance)
                .aggregation(AggregationOp::Min),
        );
        b.add(
            // 0 = none, 1 = compensation, 2 = full atomicity; the weakest
            // member bounds the composition.
            PropertySpec::new("TransactionSupport")
                .category(Category::Transaction)
                .aggregation(AggregationOp::Min),
        );

        // Network layer.
        b.add(
            PropertySpec::new("NetworkLatency")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Milliseconds)
                .category(Category::Performance)
                .layer(Layer::Network)
                .aggregation(AggregationOp::Sum),
        );
        b.add(
            PropertySpec::new("Bandwidth")
                .unit(Unit::KilobitsPerSecond)
                .category(Category::Performance)
                .layer(Layer::Network)
                .aggregation(AggregationOp::Min),
        );
        b.add(
            PropertySpec::new("Jitter")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Milliseconds)
                .category(Category::Performance)
                .layer(Layer::Network)
                .aggregation(AggregationOp::Max),
        );
        b.add(
            // The worst link dominates an end-to-end path, hence Max.
            PropertySpec::new("PacketLoss")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Ratio)
                .category(Category::Dependability)
                .layer(Layer::Network)
                .aggregation(AggregationOp::Max),
        );
        b.add(
            PropertySpec::new("SignalStrength")
                .unit(Unit::Dbm)
                .category(Category::Performance)
                .layer(Layer::Network)
                .aggregation(AggregationOp::Min),
        );

        // Device layer.
        b.add(
            PropertySpec::new("BatteryLevel")
                .unit(Unit::Ratio)
                .category(Category::Dependability)
                .layer(Layer::Device)
                .aggregation(AggregationOp::Min),
        );
        b.add(
            PropertySpec::new("CpuLoad")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Ratio)
                .category(Category::Performance)
                .layer(Layer::Device)
                .aggregation(AggregationOp::Max),
        );
        b.add(
            PropertySpec::new("MemoryAvailable")
                .category(Category::Performance)
                .layer(Layer::Device)
                .aggregation(AggregationOp::Min),
        );

        // User layer, aligned on the provider vocabulary.
        b.add(
            PropertySpec::new("Delay")
                .namespace("user")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Milliseconds)
                .category(Category::Performance)
                .layer(Layer::User)
                .aggregation(AggregationOp::Sum)
                .equivalent_to("ResponseTime"),
        );
        b.add(
            PropertySpec::new("TotalPrice")
                .namespace("user")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Euro)
                .category(Category::Cost)
                .layer(Layer::User)
                .aggregation(AggregationOp::Sum)
                .equivalent_to("Price"),
        );
        b.add(
            PropertySpec::new("Trustworthiness")
                .namespace("user")
                .category(Category::Reputation)
                .layer(Layer::User)
                .aggregation(AggregationOp::Average)
                .equivalent_to("Reputation"),
        );

        match b.build() {
            Ok(model) => model,
            // The standard vocabulary is a static literal; failing to
            // build is a defect in this file, not a runtime condition.
            Err(e) => panic!("standard vocabulary failed to build: {e}"),
        }
    }

    /// The alignment ontology behind the model.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Looks a property up by name.
    pub fn property(&self, name: &str) -> Option<PropertyId> {
        self.by_name.get(name).copied()
    }

    /// Looks a property up by name, erroring on unknown names.
    ///
    /// # Errors
    ///
    /// Returns [`QosModelError::UnknownProperty`] when absent.
    pub fn require(&self, name: &str) -> Result<PropertyId, QosModelError> {
        self.property(name)
            .ok_or_else(|| QosModelError::UnknownProperty(name.to_owned()))
    }

    /// Looks a property up by the ontology concept it denotes.
    pub fn property_by_concept(&self, concept: ConceptId) -> Option<PropertyId> {
        if let Some(&id) = self.by_concept.get(&concept) {
            return Some(id);
        }
        // Fall back to equivalence-class search (alias concepts).
        self.by_concept
            .iter()
            .find_map(|(&c, &id)| self.ontology.same_concept(c, concept).then_some(id))
    }

    /// Full definition of a property.
    pub fn def(&self, id: PropertyId) -> &PropertyDef {
        &self.props[id.index()]
    }

    /// Shorthand for `def(id).tendency()`.
    pub fn tendency(&self, id: PropertyId) -> Tendency {
        self.def(id).tendency
    }

    /// Number of registered properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Whether the model has no property.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Iterates over all property ids.
    pub fn iter(&self) -> impl Iterator<Item = PropertyId> + '_ {
        (0..self.props.len()).map(PropertyId::from_index)
    }

    /// Properties measured at a given layer.
    pub fn layer_properties(&self, layer: Layer) -> impl Iterator<Item = PropertyId> + '_ {
        self.iter().filter(move |&id| self.def(id).layer == layer)
    }

    /// Semantic match degree between a required and an offered property.
    pub fn match_property(&self, required: PropertyId, offered: PropertyId) -> MatchDegree {
        self.ontology
            .match_degree(self.def(required).concept, self.def(offered).concept)
    }

    /// The best usable (exact or plug-in) match for `required` among
    /// `offered`, together with its degree. Exact matches win over plug-in
    /// ones; ties break towards the first offer.
    pub fn best_match(
        &self,
        required: PropertyId,
        offered: impl IntoIterator<Item = PropertyId>,
    ) -> Option<(PropertyId, MatchDegree)> {
        offered
            .into_iter()
            .map(|o| (o, self.match_property(required, o)))
            .filter(|(_, d)| d.is_usable())
            .max_by_key(|&(o, d)| (d, std::cmp::Reverse(o)))
    }

    /// Resolves a property (typically user-layer) onto the best matching
    /// property of another layer.
    pub fn resolve_to_layer(&self, required: PropertyId, layer: Layer) -> Option<PropertyId> {
        if self.def(required).layer == layer {
            return Some(required);
        }
        self.best_match(required, self.layer_properties(layer))
            .map(|(p, _)| p)
    }

    /// Renders a QoS vector with property names and unit symbols, e.g.
    /// `ResponseTime: 450 ms, Price: 24 EUR`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qasom_qos::{QosModel, QosVector};
    ///
    /// let model = QosModel::standard();
    /// let rt = model.property("ResponseTime").unwrap();
    /// let mut v = QosVector::new();
    /// v.set(rt, 450.0);
    /// assert_eq!(model.format_vector(&v), "ResponseTime: 450 ms");
    /// ```
    pub fn format_vector(&self, qos: &crate::QosVector) -> String {
        let mut out = String::new();
        for (i, (p, v)) in qos.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let def = self.def(p);
            out.push_str(def.name());
            out.push_str(": ");
            // Trim float noise for readability.
            if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
                out.push_str(&format!("{}", v.round() as i64));
            } else {
                out.push_str(&format!("{v:.3}"));
            }
            let unit = def.unit();
            if unit != crate::Unit::Dimensionless {
                out.push(' ');
                out.push_str(&unit.to_string());
            }
        }
        out
    }

    /// Builds a [`Constraint`] on a named property, converting `bound` from
    /// `unit` to the property's canonical unit.
    ///
    /// # Errors
    ///
    /// Fails on unknown property names; unit mismatches fall back to the
    /// raw value (the caller opted out of unit safety by naming the wrong
    /// dimension) — use [`Unit::convert`] directly for checked conversion.
    pub fn constraint(
        &self,
        name: &str,
        bound: f64,
        unit: Unit,
    ) -> Result<Constraint, QosModelError> {
        let id = self.require(name)?;
        let def = self.def(id);
        let bound = unit.convert(bound, def.unit).unwrap_or(bound);
        Ok(Constraint::new(id, def.tendency, bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_model_has_all_layers() {
        let m = QosModel::standard();
        assert!(m.layer_properties(Layer::Service).count() >= 10);
        assert!(m.layer_properties(Layer::Network).count() >= 5);
        assert!(m.layer_properties(Layer::Device).count() >= 3);
        assert!(m.layer_properties(Layer::User).count() >= 3);
    }

    #[test]
    fn user_vocabulary_is_aligned() {
        let m = QosModel::standard();
        let delay = m.property("Delay").unwrap();
        let rt = m.property("ResponseTime").unwrap();
        assert_eq!(m.match_property(delay, rt), MatchDegree::Exact);
        assert_eq!(m.resolve_to_layer(delay, Layer::Service), Some(rt));
    }

    #[test]
    fn unrelated_properties_fail_to_match() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let price = m.property("Price").unwrap();
        assert!(!m.match_property(rt, price).is_usable());
    }

    #[test]
    fn subproperty_matches_as_plugin() {
        let mut b = QosModelBuilder::new();
        b.add(
            PropertySpec::new("Latency")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Milliseconds)
                .category(Category::Performance),
        );
        b.add(
            PropertySpec::new("RoundTripTime")
                .tendency(Tendency::LowerBetter)
                .unit(Unit::Milliseconds)
                .subproperty_of("Latency"),
        );
        let m = b.build().unwrap();
        let lat = m.property("Latency").unwrap();
        let rtt = m.property("RoundTripTime").unwrap();
        assert_eq!(m.match_property(lat, rtt), MatchDegree::PlugIn);
        assert_eq!(m.best_match(lat, [rtt]), Some((rtt, MatchDegree::PlugIn)));
    }

    #[test]
    fn duplicate_property_is_reported_at_build() {
        let mut b = QosModelBuilder::new();
        b.add(PropertySpec::new("X"));
        b.add(PropertySpec::new("X"));
        assert!(matches!(
            b.build(),
            Err(QosModelError::DuplicateProperty(_))
        ));
    }

    #[test]
    fn unknown_parent_is_reported_at_build() {
        let mut b = QosModelBuilder::new();
        b.add(PropertySpec::new("X").subproperty_of("Nope"));
        assert!(matches!(b.build(), Err(QosModelError::UnknownProperty(_))));
    }

    #[test]
    fn constraint_converts_units() {
        let m = QosModel::standard();
        let c = m.constraint("ResponseTime", 2.0, Unit::Seconds).unwrap();
        assert_eq!(c.bound(), 2000.0);
        assert_eq!(c.tendency(), Tendency::LowerBetter);
    }

    #[test]
    fn constraint_on_unknown_property_errors() {
        let m = QosModel::standard();
        assert!(m.constraint("Nope", 1.0, Unit::Dimensionless).is_err());
    }

    #[test]
    fn property_by_concept_handles_aliases() {
        let m = QosModel::standard();
        let delay = m.property("Delay").unwrap();
        let concept = m.def(delay).concept();
        assert_eq!(m.property_by_concept(concept), Some(delay));
    }

    #[test]
    fn best_match_prefers_exact_over_plugin() {
        let mut b = QosModelBuilder::new();
        b.add(PropertySpec::new("Latency").tendency(Tendency::LowerBetter));
        b.add(PropertySpec::new("Rtt").subproperty_of("Latency"));
        let m = b.build().unwrap();
        let lat = m.property("Latency").unwrap();
        let rtt = m.property("Rtt").unwrap();
        assert_eq!(
            m.best_match(lat, [rtt, lat]),
            Some((lat, MatchDegree::Exact))
        );
    }

    #[test]
    fn spec_unit_is_canonicalised() {
        let mut b = QosModelBuilder::new();
        let id = b.add(PropertySpec::new("D").unit(Unit::Seconds));
        let m = b.build().unwrap();
        assert_eq!(m.def(id).unit(), Unit::Milliseconds);
    }
}
