//! Service-level agreements: contracts derived from advertisements,
//! checked against deliveries.
//!
//! When the middleware binds a service, the advertised QoS becomes the
//! *agreed* QoS — with a tolerance band, since pervasive delivery is
//! noisy by nature. Every delivered QoS vector is recorded against the
//! agreement; the running compliance ratio feeds reputation and gives
//! substitution an objective trigger.

use crate::{Constraint, ConstraintSet, QosModel, QosVector, Tendency};

/// A service-level agreement: tolerance-widened bounds around the agreed
/// QoS plus a delivery record.
///
/// # Examples
///
/// ```
/// use qasom_qos::{QosModel, QosVector, Sla};
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
/// let mut agreed = QosVector::new();
/// agreed.set(rt, 100.0);
///
/// let mut sla = Sla::from_agreed(&model, &agreed, 0.10); // ±10 %
/// let mut delivered = QosVector::new();
/// delivered.set(rt, 105.0);
/// assert!(sla.record(&delivered)); // within tolerance
/// delivered.set(rt, 150.0);
/// assert!(!sla.record(&delivered)); // breach
/// assert_eq!(sla.compliance(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sla {
    agreed: QosVector,
    constraints: ConstraintSet,
    checks: u64,
    breaches: u64,
}

impl Sla {
    /// Creates an agreement from the advertised (agreed) QoS, widening
    /// each bound by `tolerance` (a fraction: `0.1` tolerates deliveries
    /// 10 % worse than agreed).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or non-finite.
    pub fn from_agreed(model: &QosModel, agreed: &QosVector, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "tolerance must be a non-negative fraction"
        );
        let constraints = agreed
            .iter()
            .map(|(p, v)| {
                let tendency = model.tendency(p);
                let bound = match tendency {
                    Tendency::LowerBetter => v * (1.0 + tolerance),
                    Tendency::HigherBetter => v * (1.0 - tolerance),
                };
                Constraint::new(p, tendency, bound)
            })
            .collect();
        Sla {
            agreed: agreed.clone(),
            constraints,
            checks: 0,
            breaches: 0,
        }
    }

    /// The agreed (advertised) QoS.
    pub fn agreed(&self) -> &QosVector {
        &self.agreed
    }

    /// The tolerance-widened bounds the deliveries are checked against.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Records one delivery; returns whether it complied. A failed
    /// invocation should be recorded with [`Sla::record_failure`]
    /// instead.
    pub fn record(&mut self, delivered: &QosVector) -> bool {
        self.checks += 1;
        let ok = self.constraints.satisfied_by(delivered);
        if !ok {
            self.breaches += 1;
        }
        ok
    }

    /// Records a failed invocation (always a breach).
    pub fn record_failure(&mut self) {
        self.checks += 1;
        self.breaches += 1;
    }

    /// Number of recorded deliveries (including failures).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of breaches.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Compliance ratio in `[0, 1]`; `1.0` when nothing was recorded yet
    /// (innocent until proven otherwise).
    pub fn compliance(&self) -> f64 {
        if self.checks == 0 {
            1.0
        } else {
            1.0 - self.breaches as f64 / self.checks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (QosModel, QosVector) {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let av = model.property("Availability").unwrap();
        let mut agreed = QosVector::new();
        agreed.set(rt, 100.0);
        agreed.set(av, 0.9);
        (model, agreed)
    }

    fn deliver(model: &QosModel, rt_v: f64, av_v: f64) -> QosVector {
        let rt = model.property("ResponseTime").unwrap();
        let av = model.property("Availability").unwrap();
        let mut v = QosVector::new();
        v.set(rt, rt_v);
        v.set(av, av_v);
        v
    }

    #[test]
    fn tolerance_widens_both_directions() {
        let (model, agreed) = fixture();
        let mut sla = Sla::from_agreed(&model, &agreed, 0.1);
        // 10 % slower and 10 % less available both still comply.
        assert!(sla.record(&deliver(&model, 110.0, 0.81)));
        // Beyond tolerance breaches.
        assert!(!sla.record(&deliver(&model, 111.0, 0.9)));
        assert!(!sla.record(&deliver(&model, 100.0, 0.80)));
    }

    #[test]
    fn zero_tolerance_pins_the_advertisement() {
        let (model, agreed) = fixture();
        let mut sla = Sla::from_agreed(&model, &agreed, 0.0);
        assert!(sla.record(&deliver(&model, 100.0, 0.9)));
        assert!(!sla.record(&deliver(&model, 100.1, 0.9)));
    }

    #[test]
    fn compliance_tracks_history() {
        let (model, agreed) = fixture();
        let mut sla = Sla::from_agreed(&model, &agreed, 0.1);
        assert_eq!(sla.compliance(), 1.0);
        sla.record(&deliver(&model, 100.0, 0.9));
        sla.record_failure();
        sla.record(&deliver(&model, 500.0, 0.9));
        sla.record(&deliver(&model, 90.0, 0.95));
        assert_eq!(sla.checks(), 4);
        assert_eq!(sla.breaches(), 2);
        assert_eq!(sla.compliance(), 0.5);
    }

    #[test]
    fn missing_delivered_property_is_a_breach() {
        let (model, agreed) = fixture();
        let mut sla = Sla::from_agreed(&model, &agreed, 0.5);
        let rt = model.property("ResponseTime").unwrap();
        let mut partial = QosVector::new();
        partial.set(rt, 100.0); // availability missing
        assert!(!sla.record(&partial));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_is_rejected() {
        let (model, agreed) = fixture();
        let _ = Sla::from_agreed(&model, &agreed, -0.1);
    }
}
