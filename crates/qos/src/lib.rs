//! Semantic end-to-end QoS model for pervasive environments.
//!
//! This crate implements the first contribution of the QASOM middleware: a
//! QoS model that gives users, service providers and the middleware itself a
//! *shared understanding* of quality in open pervasive environments. It is
//! organised exactly like the four linked ontologies of the original model:
//!
//! * **QoS core** — what a QoS *property* is: its [`Tendency`] (whether
//!   lower or higher values are better), its [`Unit`] and measurement
//!   dimension, its category and the default way it aggregates across a
//!   composition ([`AggregationOp`]).
//! * **Infrastructure QoS** — network- and device-level properties
//!   (latency, bandwidth, packet loss, battery, CPU load, …) that underpin
//!   every service delivered over a pervasive network.
//! * **Service QoS** — application-service properties (response time,
//!   throughput, availability, reliability, price, security, reputation).
//! * **User QoS** — the vocabulary users phrase their requirements in
//!   (delay, total price, …), aligned onto the provider vocabulary through
//!   ontology equivalences so heterogeneous actors still understand each
//!   other.
//!
//! On top of the vocabulary the crate provides the machinery every other
//! QASOM component consumes:
//!
//! * [`QosVector`] — a service's (or composition's) QoS values in canonical
//!   units;
//! * [`Constraint`] / [`ConstraintSet`] — user QoS requirements, with
//!   tendency-aware satisfaction checks;
//! * [`Preferences`] — normalised property weights;
//! * [`Normalizer`] and [`utility`] — min–max
//!   normalisation and the SAW (simple additive weighting) utility used to
//!   rank services and compositions;
//! * [`EndToEnd`] — rules composing service-level and infrastructure-level
//!   QoS into the QoS the user actually perceives.
//!
//! # Examples
//!
//! ```
//! use qasom_qos::{QosModel, QosVector};
//!
//! let model = QosModel::standard();
//! let rt = model.property("ResponseTime").unwrap();
//! let avail = model.property("Availability").unwrap();
//!
//! let mut offered = QosVector::new();
//! offered.set(rt, 120.0); // milliseconds
//! offered.set(avail, 0.98); // ratio
//!
//! // A user asking for "Delay" is understood through the ontology.
//! let delay = model.property("Delay").unwrap();
//! assert!(model.match_property(delay, rt).is_usable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod model;
mod normalize;
mod perceived;
mod property;
mod sla;
mod unit;
pub mod utility;
mod vector;

pub use constraint::{Constraint, ConstraintSet};
pub use model::{PropertySpec, QosModel, QosModelBuilder, QosModelError};
pub use normalize::Normalizer;
pub use perceived::{EndToEnd, EndToEndRule};
pub use property::{AggregationOp, Category, Layer, PropertyDef, PropertyId, Tendency};
pub use sla::Sla;
pub use unit::{Dimension, ParseUnitError, Unit, UnitError};
pub use utility::Preferences;
pub use vector::QosVector;
