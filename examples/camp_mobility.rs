//! Mobility and end-to-end QoS: streaming peers are loaded from a QSD
//! document, campers move under a random-waypoint model, and the
//! middleware re-perceives every service through the current radio path
//! before each composition — so the *same* request selects different
//! peers as Bob wanders around the camp.
//!
//! ```text
//! cargo run --release --example camp_mobility
//! ```

use qasom::{EnvironmentConfig, UserRequest};
use qasom_netsim::mobility::{Position, RadioProfile, RandomWaypoint};
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_task::{Activity, TaskNode, UserTask};

const PEERS_QSD: &str = r#"
<services>
  <service name="tent-3-audio" function="camp#Streaming" host="1">
    <qos property="ResponseTime" value="100" unit="ms"/>
    <qos property="Availability" value="0.99"/>
  </service>
  <service name="lodge-audio" function="camp#Streaming" host="2">
    <qos property="ResponseTime" value="100" unit="ms"/>
    <qos property="Availability" value="0.99"/>
  </service>
  <service name="van-audio" function="camp#Streaming" host="3">
    <qos property="ResponseTime" value="100" unit="ms"/>
    <qos property="Availability" value="0.99"/>
  </service>
</services>"#;

fn main() {
    let mut onto = OntologyBuilder::new("camp");
    onto.concept("Streaming");
    let mut env = EnvironmentConfig::builder()
        .seed(31)
        .build(QosModel::standard(), onto.build().unwrap());
    env.load_services(PEERS_QSD).expect("valid QSD");

    // Node 0 is Bob; nodes 1–3 host the peers. Peers stand still, Bob
    // walks.
    let mut mobility = RandomWaypoint::new(4, (120.0, 120.0), (1.0, 2.0), 31);
    mobility.set_position(1, Position::new(20.0, 20.0));
    mobility.set_position(2, Position::new(100.0, 30.0));
    mobility.set_position(3, Position::new(60.0, 110.0));
    let radio = RadioProfile::wifi_adhoc();

    let task = UserTask::new(
        "listen",
        TaskNode::activity(Activity::new("stream", "camp#Streaming")),
    )
    .unwrap();

    println!(
        "{:>6}  {:>18}  {:>12}  {:>14}",
        "t [s]", "selected peer", "dist [m]", "perceived [ms]"
    );
    let rt = env.model().property("ResponseTime").unwrap();
    for step in 0..8 {
        // Publish the current radio paths as infrastructure QoS.
        for host in 1..=3u64 {
            let d = mobility.distance(0, host as usize);
            env.set_infrastructure(host, radio.infra_qos(env.model(), d));
        }
        let request = UserRequest::new(task.clone())
            .constraint("Delay", 2.0, Unit::Seconds)
            .unwrap();
        let comp = env.compose(&request).expect("peers in range");
        let chosen = comp.outcome().assignment[0].clone();
        let desc = env.registry().get(chosen.id()).unwrap();
        let host = desc.host().unwrap();
        println!(
            "{:>6}  {:>18}  {:>12.1}  {:>14.1}",
            step * 30,
            desc.name(),
            mobility.distance(0, host as usize),
            chosen.qos().get(rt).unwrap_or(f64::NAN),
        );
        // Bob walks for 30 seconds.
        mobility.step(30.0);
    }
    println!("\nas the distance to each host changes, the end-to-end rules make the\nmiddleware re-rank the same advertisements — selection follows Bob around.");
}
