//! The open-air-market variant of the shopping scenario: no platform, no
//! infrastructure — vendors advertise from their own handhelds and Bob's
//! device runs *distributed QASSA* over the ad hoc network: vendors rank
//! their own offers locally, Bob's device merges the digests and runs the
//! global phase.
//!
//! ```text
//! cargo run --release --example adhoc_market
//! ```

use qasom_netsim::{DeviceProfile, LinkConfig};
use qasom_obs::{keys, MemoryRecorder, Recorder};
use qasom_qos::QosModel;
use qasom_selection::distributed::{DistributedQassa, DistributedSetup};
use qasom_selection::workload::{Tightness, WorkloadSpec};

fn main() {
    let model = QosModel::standard();
    // Protocol telemetry (messages, retries, per-provider RTTs) flows
    // into a recorder; recording never changes the protocol itself.
    let recorder = MemoryRecorder::new();

    // Bob wants 4 kinds of items; each market stall (provider node)
    // carries some offers for each.
    let workload = WorkloadSpec::evaluation_default()
        .activities(4)
        .services_per_activity(60)
        .tightness(Tightness::AtMeanPlusSigma)
        .build(&model, 7);

    println!("open-air market: 4 shopping activities, 60 offers each\n");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>10}  {:>9}",
        "stalls", "local [ms]", "global [ms]", "messages", "feasible"
    );

    let driver = DistributedQassa::new(&model);
    for stalls in [2usize, 5, 10, 20, 40] {
        let setup = DistributedSetup {
            providers: stalls,
            // Crowded 2.4 GHz band: slower, jittery, slightly lossy.
            link: LinkConfig::new(8.0, 3.0).with_loss(0.0),
            provider_profile: DeviceProfile::constrained(),
            coordinator_profile: DeviceProfile::constrained(),
            per_candidate_cost_us: 10,
            reply_timeout_ms: 5_000,
            ..DistributedSetup::default()
        };
        let report = driver
            .run_recorded(&workload, &setup, 7, Some(&recorder))
            .expect("the protocol completes");
        println!(
            "{:>8}  {:>14.2}  {:>14.2}  {:>10}  {:>9}",
            stalls,
            report.local_phase.as_millis_f64(),
            report.global_phase.as_millis_f64(),
            report.messages,
            report.outcome.feasible
        );
    }

    println!(
        "\nwith more stalls each handheld ranks fewer offers, so the local\n\
         phase shrinks while the merge/global phase on Bob's device stays flat —\n\
         the shape of Fig. VI.12 of the original evaluation."
    );

    let snapshot = recorder.snapshot().expect("memory recorder retains data");
    println!(
        "\ntelemetry across all runs: {} message(s), {} retransmission(s); \
         median-free RTT histogram has {} sample(s)",
        snapshot.counter(keys::DISTRIBUTED_MESSAGES),
        snapshot.counter(keys::DISTRIBUTED_RETRIES),
        snapshot
            .histograms
            .get(keys::DISTRIBUTED_RTT_MS)
            .map_or(0, |h| h.count()),
    );
}
