//! Quickstart: one service, one activity, one request — the smallest
//! end-to-end trip through the middleware.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use qasom::{EnvironmentConfig, EventLog, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

fn main() {
    // 1. The shared QoS vocabulary and a tiny domain ontology.
    let model = QosModel::standard();
    let mut onto = OntologyBuilder::new("demo");
    onto.concept("Echo");
    let ontology = onto.build().expect("well-formed ontology");

    // 2. A pervasive environment with two competing providers, plus an
    //    event log subscribed to the middleware's event stream.
    let log = EventLog::new();
    let mut env = EnvironmentConfig::builder()
        .seed(42)
        .sink(Arc::new(log.clone()))
        .build(model, ontology);
    let rt = env.model().property("ResponseTime").unwrap();
    let av = env.model().property("Availability").unwrap();
    for (name, time) in [("echo-fast", 40.0), ("echo-slow", 400.0)] {
        let desc = ServiceDescription::new(name, "demo#Echo")
            .with_provider("demo-corp")
            .with_qos(rt, time)
            .with_qos(av, 0.99);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal).with_noise(0.05));
    }

    // 3. A one-activity task and its QoS requirements.
    let task = UserTask::new(
        "hello",
        TaskNode::activity(Activity::new("echo", "demo#Echo")),
    )
    .expect("valid task");
    let request = UserRequest::new(task)
        .constraint("ResponseTime", 0.2, Unit::Seconds)
        .expect("known property")
        .weight("ResponseTime", 2.0)
        .weight("Availability", 1.0);

    // 4. Compose and execute.
    let composition = env.compose(&request).expect("a provider exists");
    println!(
        "selected composition promises {} (feasible: {})",
        env.model().format_vector(composition.promised_qos()),
        composition.outcome().feasible
    );

    let report = env.execute(composition).expect("execution completes");
    println!(
        "executed {} invocation(s); delivered QoS {}",
        report.invocations.len(),
        env.model().format_vector(&report.delivered)
    );
    println!("\nmiddleware trace:");
    for event in log.events() {
        println!("  {event:?}");
    }
}
