//! The pervasive-entertainment scenario: in the holiday camp, campers'
//! devices offer 'Top 10' listings and audio/video streaming. Bob's
//! device selects the services with the best QoS; as he wanders away the
//! stream quality drifts, the proactive monitor predicts the violation,
//! and the middleware switches him to a stronger streaming peer before
//! the music stops.
//!
//! ```text
//! cargo run --example holiday_streaming
//! ```

use std::sync::Arc;

use qasom::{EnvironmentConfig, EventLog, MiddlewareEvent, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, LoopBound, TaskNode, UserTask};

fn main() {
    let mut b = OntologyBuilder::new("camp");
    b.concept("TopTen");
    let streaming = b.concept("Streaming");
    b.subconcept("AudioStreaming", streaming);
    b.subconcept("VideoStreaming", streaming);
    let ontology = b.build().expect("well-formed ontology");

    let log = EventLog::new();
    let mut env = EnvironmentConfig::builder()
        .seed(2024)
        .sink(Arc::new(log.clone()))
        .build(QosModel::standard(), ontology);
    let rt = env.model().property("ResponseTime").unwrap();
    let av = env.model().property("Availability").unwrap();
    let enc = env.model().property("EncodingQuality").unwrap();

    // Campers' devices.
    let top10 = ServiceDescription::new("dj-phone", "camp#TopTen")
        .with_qos(rt, 80.0)
        .with_qos(av, 0.97)
        .with_qos(enc, 4.0);
    let nominal = top10.qos().clone();
    env.deploy(top10, SyntheticService::new(nominal).with_noise(0.05));

    // The nearby streamer degrades as Bob walks away (drift injection);
    // the one across the camp stays stable.
    let nearby = ServiceDescription::new("tent-12-audio", "camp#AudioStreaming")
        .with_qos(rt, 100.0)
        .with_qos(av, 0.99)
        .with_qos(enc, 4.5);
    let nominal = nearby.qos().clone();
    env.deploy(
        nearby,
        SyntheticService::new(nominal)
            .with_noise(0.05)
            .with_drift(2, rt, 6.0), // walking away: response time × 6
    );
    let far = ServiceDescription::new("lodge-video", "camp#VideoStreaming")
        .with_qos(rt, 180.0)
        .with_qos(av, 0.98)
        .with_qos(enc, 4.0);
    let nominal = far.qos().clone();
    env.deploy(far, SyntheticService::new(nominal).with_noise(0.05));

    // Bob's evening: fetch the charts, then stream the first song —
    // repeatedly, while he wanders around the camp.
    let task = UserTask::new(
        "camp-evening",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("charts", "camp#TopTen")),
            TaskNode::repeat(
                TaskNode::activity(Activity::new("stream", "camp#Streaming")),
                LoopBound::new(6.0, 10),
            ),
        ]),
    )
    .expect("valid task");

    let request = UserRequest::new(task)
        .constraint("Delay", 2.5, Unit::Seconds)
        .expect("known property")
        .weight("EncodingQuality", 2.0)
        .weight("Delay", 1.0);

    let composition = env.compose(&request).expect("streaming peers exist");
    println!(
        "evening plan promises {} (feasible: {})",
        env.model().format_vector(composition.promised_qos()),
        composition.outcome().feasible
    );

    let report = env.execute(composition).expect("the evening completes");
    println!(
        "\nevening over: {} invocation(s), {} substitution(s)",
        report.invocations.len(),
        report.substitutions
    );
    println!(
        "delivered QoS: {}",
        env.model().format_vector(&report.delivered)
    );

    println!("\nadaptation trace:");
    for event in &log.events() {
        match event {
            MiddlewareEvent::ViolationDetected {
                property,
                proactive,
            } => println!(
                "  violation on {property} ({})",
                if *proactive { "predicted" } else { "observed" }
            ),
            MiddlewareEvent::Substituted { activity, from, to } => {
                println!("  switched {activity}: {from} -> {to}")
            }
            _ => {}
        }
    }
}
