//! The pervasive-medical-visit scenario: the hospital information system
//! plans Bob's visit (registration → diagnosis → pharmacy → payment) over
//! the services currently on duty, selecting the desks with the best QoS.
//! When the assigned doctor becomes unavailable mid-visit, the system
//! dynamically re-assigns Bob to another doctor of the same specialty —
//! service substitution at work.
//!
//! ```text
//! cargo run --example medical_visit
//! ```

use std::sync::Arc;

use qasom::{Environment, EnvironmentConfig, EventLog, MiddlewareEvent, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

fn main() {
    // The hospital's domain ontology: diagnosis specialties subsume the
    // generic Diagnosis capability.
    let mut b = OntologyBuilder::new("med");
    b.concept("Register");
    let diagnosis = b.concept("Diagnosis");
    b.subconcept("Cardiology", diagnosis);
    b.concept("Pharmacy");
    b.concept("Payment");
    let ontology = b.build().expect("well-formed ontology");

    let log = EventLog::new();
    let mut env = EnvironmentConfig::builder()
        .seed(99)
        .sink(Arc::new(log.clone()))
        .build(QosModel::standard(), ontology);
    let rt = env.model().property("ResponseTime").unwrap();
    let av = env.model().property("Availability").unwrap();

    let deploy = |env: &mut Environment, name: &str, f: &str, ms: f64, crash: Option<u64>| {
        let desc = ServiceDescription::new(name, f)
            .with_provider("hospital")
            .with_qos(rt, ms)
            .with_qos(av, 0.99);
        let nominal = desc.qos().clone();
        let mut svc = SyntheticService::new(nominal).with_noise(0.03);
        if let Some(n) = crash {
            svc = svc.with_crash_after(n);
        }
        env.deploy(desc, svc);
    };

    // Several desks per step; Dr. House is preferred but leaves for an
    // emergency right away.
    deploy(&mut env, "registration-desk-1", "med#Register", 120.0, None);
    deploy(&mut env, "registration-desk-2", "med#Register", 300.0, None);
    deploy(&mut env, "dr-house", "med#Cardiology", 600.0, Some(0));
    deploy(&mut env, "dr-cuddy", "med#Cardiology", 900.0, None);
    deploy(&mut env, "pharmacy-desk", "med#Pharmacy", 200.0, None);
    deploy(&mut env, "cashier", "med#Payment", 100.0, None);
    deploy(&mut env, "mobile-payment", "med#Payment", 60.0, None);

    // Bob's visit, requested in the generic vocabulary: the cardiology
    // doctors plug into the Diagnosis requirement.
    let visit = UserTask::new(
        "medical-visit",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("register", "med#Register")),
            TaskNode::activity(Activity::new("diagnose", "med#Diagnosis")),
            TaskNode::activity(Activity::new("medicines", "med#Pharmacy")),
            TaskNode::activity(Activity::new("pay", "med#Payment")),
        ]),
    )
    .expect("valid task");

    let request = UserRequest::new(visit)
        .constraint("Delay", 3.0, Unit::Seconds)
        .expect("known property")
        .constraint("Availability", 0.9, Unit::Ratio)
        .expect("known property");

    let composition = env.compose(&request).expect("the hospital can serve Bob");
    println!("visit plan (feasible: {}):", composition.outcome().feasible);
    let names: Vec<&str> = ["register", "diagnose", "medicines", "pay"].to_vec();
    for (i, chosen) in composition.outcome().assignment.iter().enumerate() {
        println!(
            "  {:<10} -> {}",
            names[i],
            env.registry()
                .get(chosen.id())
                .map(|d| d.name().to_owned())
                .unwrap_or_default()
        );
    }

    let report = env.execute(composition).expect("the visit completes");
    println!(
        "\nvisit completed with {} substitution(s); delivered QoS {}",
        report.substitutions,
        env.model().format_vector(&report.delivered)
    );
    for event in &log.events() {
        if let MiddlewareEvent::Substituted { activity, from, to } = event {
            let name = |id: &qasom_registry::ServiceId| {
                env.registry()
                    .get(*id)
                    .map(|d| d.name().to_owned())
                    .unwrap_or_else(|| format!("{id} (departed)"))
            };
            println!("  re-assigned {activity}: {} -> {}", name(from), name(to));
        }
    }
}
