//! The pervasive-shopping scenario of the original paper: Bob submits a
//! shopping task to the commercial centre's platform from the lounge
//! hall. Several shops compete per activity; the platform selects the
//! composition meeting his delay and total-price requirements, and — when
//! the chosen payment desk closes mid-task — adapts by substitution and,
//! failing that, by switching to an alternative behaviour of the shopping
//! task class.
//!
//! ```text
//! cargo run --example pervasive_shopping
//! ```

use std::sync::Arc;

use qasom::{EnvironmentConfig, EventLog, MiddlewareEvent, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_task::{bpel, Activity, TaskClass, TaskNode, UserTask};

const SHOPPING_BPEL: &str = r#"
<process name="shopping-v1">
  <sequence>
    <invoke name="browse" function="shop#Browse"/>
    <flow>
      <invoke name="buy-book" function="shop#BuyBook"/>
      <invoke name="buy-cd" function="shop#BuyCd"/>
    </flow>
    <invoke name="pay" function="shop#Pay"/>
  </sequence>
</process>"#;

fn main() {
    // Domain ontology of the commercial centre.
    let mut b = OntologyBuilder::new("shop");
    b.concept("Browse");
    b.concept("BuyBook");
    b.concept("BuyCd");
    let pay = b.concept("Pay");
    b.subconcept("PayByCard", pay);
    b.subconcept("PayCash", pay);
    let ontology = b.build().expect("well-formed ontology");

    let log = EventLog::new();
    let mut env = EnvironmentConfig::builder()
        .seed(7)
        .sink(Arc::new(log.clone()))
        .build(QosModel::standard(), ontology);
    let rt = env.model().property("ResponseTime").unwrap();
    let price = env.model().property("Price").unwrap();
    let av = env.model().property("Availability").unwrap();

    // The shops of the centre: (name, function, response ms, price EUR).
    let shops = [
        ("catalogue-kiosk", "shop#Browse", 60.0, 0.0),
        ("catalogue-mobile", "shop#Browse", 120.0, 0.0),
        ("fnac-books", "shop#BuyBook", 150.0, 18.0),
        ("used-books", "shop#BuyBook", 300.0, 9.0),
        ("music-store", "shop#BuyCd", 140.0, 15.0),
        ("discount-cds", "shop#BuyCd", 260.0, 8.0),
        ("till-2", "shop#PayCash", 220.0, 0.0),
    ];
    for (name, function, time, cost) in shops {
        let desc = ServiceDescription::new(name, function)
            .with_provider("centre")
            .with_qos(rt, time)
            .with_qos(price, cost)
            .with_qos(av, 0.98);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal).with_noise(0.05));
    }
    // The card desk advertises great QoS… and closes after one customer.
    let card_desk = ServiceDescription::new("till-1", "shop#PayByCard")
        .with_provider("centre")
        .with_qos(rt, 90.0)
        .with_qos(price, 0.0)
        .with_qos(av, 0.99);
    let nominal = card_desk.qos().clone();
    env.deploy(
        card_desk,
        SyntheticService::new(nominal).with_crash_after(0),
    );

    // The task class: v1 buys in parallel; v2 buys sequentially (the
    // behavioural fallback).
    let v1 = bpel::parse(SHOPPING_BPEL).expect("valid abstract BPEL");
    let v2 = UserTask::new(
        "shopping-v2",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("browse2", "shop#Browse")),
            TaskNode::activity(Activity::new("buy-book2", "shop#BuyBook")),
            TaskNode::activity(Activity::new("buy-cd2", "shop#BuyCd")),
            TaskNode::activity(Activity::new("pay2", "shop#Pay")),
        ]),
    )
    .expect("valid task");
    let mut class = TaskClass::new("shopping");
    class.add_behaviour(v1.clone());
    class.add_behaviour(v2);
    env.register_task_class(class);

    // Bob's request: user-layer vocabulary (Delay, TotalPrice).
    let request = UserRequest::new(v1)
        .constraint("Delay", 1.5, Unit::Seconds)
        .expect("known property")
        .constraint("TotalPrice", 60.0, Unit::Euro)
        .expect("known property")
        .weight("Delay", 1.0)
        .weight("TotalPrice", 2.0);

    let composition = env.compose(&request).expect("the centre can serve Bob");
    println!(
        "platform proposes a composition promising {} (feasible: {})",
        env.model().format_vector(composition.promised_qos()),
        composition.outcome().feasible
    );
    for (i, chosen) in composition.outcome().assignment.iter().enumerate() {
        let name = env.registry().get(chosen.id()).map(|d| d.name().to_owned());
        println!("  activity #{i} -> {}", name.unwrap_or_default());
    }

    let report = env.execute(composition).expect("shopping completes");
    println!(
        "\nshopping finished via behaviour {:?}: {} invocation(s), {} substitution(s), {} behavioural adaptation(s)",
        report.final_task,
        report.invocations.len(),
        report.substitutions,
        report.behavioural_adaptations
    );
    println!(
        "delivered QoS: {}",
        env.model().format_vector(&report.delivered)
    );

    println!("\nexecution timeline (logical, from observed response times):");
    for t in &report.timeline {
        println!(
            "  {:<12} {:>7.1} – {:>7.1} ms",
            t.activity, t.start_ms, t.end_ms
        );
    }

    println!("\nadaptation-relevant events:");
    for event in &log.events() {
        match event {
            MiddlewareEvent::InvocationFailed { .. }
            | MiddlewareEvent::Substituted { .. }
            | MiddlewareEvent::BehaviouralAdaptation { .. }
            | MiddlewareEvent::ViolationDetected { .. } => println!("  {event:?}"),
            _ => {}
        }
    }
}
