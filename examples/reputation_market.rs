//! SLA tracking and reputation feedback: providers that deliver worse QoS
//! than they advertise accumulate contract breaches; the middleware turns
//! compliance into reputation, and reputation-weighted requests then
//! steer future selections away from the liars — no manual blacklisting.
//!
//! ```text
//! cargo run --release --example reputation_market
//! ```

use qasom::{EnvironmentConfig, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

fn main() {
    let mut b = OntologyBuilder::new("mkt");
    b.concept("Quote");
    let mut env = EnvironmentConfig::builder()
        .seed(17)
        .build(QosModel::standard(), b.build().unwrap());
    let rt = env.model().property("ResponseTime").unwrap();
    let av = env.model().property("Availability").unwrap();
    let rep = env.model().property("Reputation").unwrap();

    // Two providers advertise 50 ms. One delivers it; the other actually
    // takes 150 ms (three times the advertisement, far past the 20 %
    // SLA tolerance). Everyone starts with a neutral reputation —
    // unknown reputation would rank as *worst*, which is exactly right
    // for strangers but not for this bootstrap demo.
    let mut deploy = |name: &str, advertised_ms: f64, delivered_ms: f64| {
        let desc = ServiceDescription::new(name, "mkt#Quote")
            .with_qos(rt, advertised_ms)
            .with_qos(av, 0.99)
            .with_qos(rep, 2.5);
        let mut delivered = desc.qos().clone();
        delivered.set(rt, delivered_ms);
        env.deploy(desc, SyntheticService::new(delivered).with_noise(0.03))
    };
    let liar = deploy("quotes-r-us", 50.0, 150.0);
    let honest = deploy("fair-quotes", 55.0, 55.0);

    let task = || {
        UserTask::new(
            "get-quote",
            TaskNode::activity(Activity::new("quote", "mkt#Quote")),
        )
        .unwrap()
    };

    // Round 1: users weight delay only — the liar's advertisement wins.
    println!("round 1 — naive users (delay-weighted):");
    for _ in 0..5 {
        let comp = env
            .compose(&UserRequest::new(task()).weight("Delay", 1.0))
            .unwrap();
        let chosen = comp.outcome().assignment[0].id();
        let report = env.execute(comp).unwrap();
        println!(
            "  served by {:<12} delivered {}",
            env.registry().get(chosen).unwrap().name(),
            env.model().format_vector(
                report
                    .invocations
                    .last()
                    .and_then(|r| r.qos.as_ref())
                    .unwrap()
            )
        );
    }

    // The middleware turns SLA compliance into reputation.
    let updated = env.apply_reputation_feedback();
    println!("\nreputation feedback applied to {updated} provider(s):");
    for id in [liar, honest] {
        let sla = env.sla(id);
        println!(
            "  {:<12} compliance {:>5.2}  reputation {:>3.1}/5",
            env.registry().get(id).unwrap().name(),
            sla.map_or(1.0, |s| s.compliance()),
            env.registry()
                .get(id)
                .unwrap()
                .qos()
                .get(env.model().property("Reputation").unwrap())
                .unwrap_or(f64::NAN)
        );
    }

    // Round 2: users weight trustworthiness — the honest provider wins
    // even though its advertised delay is slightly worse.
    println!("\nround 2 — reputation-aware users (Trustworthiness-weighted):");
    let comp = env
        .compose(
            &UserRequest::new(task())
                .weight("Trustworthiness", 2.0)
                .weight("Delay", 1.0),
        )
        .unwrap();
    let chosen = comp.outcome().assignment[0].id();
    println!("  selected: {}", env.registry().get(chosen).unwrap().name());
    assert_eq!(chosen, honest, "reputation must steer selection");
}
