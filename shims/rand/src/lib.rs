//! Dependency-free stand-in for the [`rand`] crate.
//!
//! The build environment of this repository cannot reach a crates.io
//! mirror, so the workspace vendors the small API subset it uses:
//! [`Rng`], [`SeedableRng`] and [`rngs::StdRng`]. The generator is a
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is exactly what the reproduction harness needs
//! (`seed_from_u64` drives every synthetic workload).
//!
//! This is **not** a cryptographic RNG and makes no distribution-quality
//! claims beyond "good enough for simulation workloads".

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling interface over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (see [`Standard`] impls).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a canonical uniform distribution.
pub trait Standard {
    /// Samples one value.
    fn sample(rng: &mut impl Rng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut impl Rng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Samples one value.
    fn sample(self, rng: &mut impl Rng) -> Self::Output;
}

/// Uniform integer in `[0, n)` without modulo bias (Lemire rejection).
fn uniform_below(rng: &mut impl Rng, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    // Rejection zone keeps the mapping unbiased.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut impl Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but a solid,
    /// deterministic, fast PRNG with the same interface.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the full state and
            // guarantees a non-zero state for any seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_u64_range_is_samplable() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen::<u64>();
    }
}
