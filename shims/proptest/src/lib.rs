//! Dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the API subset its property tests use: the
//! [`Strategy`] combinators (`prop_map`, `prop_flat_map`,
//! `prop_recursive`, `boxed`), [`strategy::Just`], range and tuple and
//! `Vec` strategies, `prop::collection::vec`, regex-literal string
//! strategies, `any::<T>()`, and the `proptest!` / `prop_assert!` /
//! `prop_oneof!` macros.
//!
//! Differences from upstream, by design:
//!
//! - **Minimal shrinking.** A failing case is greedily minimised via
//!   [`shrink::Shrink`] (integers halve towards zero, `Vec`s and
//!   `String`s truncate, tuples shrink component-wise) under a fixed
//!   candidate budget, then reported alongside the original sampled
//!   inputs and the deterministic seed. Value types outside the
//!   [`shrink::Shrink`] impls are reported unshrunk. There is no value
//!   tree: shrinking re-runs the property body on candidate values.
//! - **Deterministic seeding.** Case `i` of test `t` always runs with
//!   seed `fnv1a(t) ^ mix(i)`, so failures reproduce across runs and
//!   machines without a regressions file.
//! - **Regex strategies** support the subset this workspace writes:
//!   character classes with ranges, `.`, literals, and the `{n}` /
//!   `{m,n}` / `?` / `*` / `+` quantifiers.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case runner, configuration and failure type.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runner configuration. Only `cases` is honoured by the shim; the
    /// other knobs exist for source compatibility.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the shim trims unannotated
            // blocks for CI latency. Tests that need more set it via
            // `ProptestConfig::with_cases`.
            Config { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fails the current case with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// Upstream-compatible alias; the shim treats rejection as failure.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError(format!("rejected: {}", reason.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Convenience alias matching upstream.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG handed to strategies while sampling a case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator for one deterministic case.
        pub fn new(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    }

    /// Runs `case` `config.cases` times with deterministic seeds,
    /// panicking with the sampled inputs on the first failure.
    ///
    /// `case` receives the per-case RNG and a scratch string it must
    /// fill with a `Debug` rendering of the sampled inputs *before*
    /// running the property body, so the report survives panics.
    pub fn run_cases<F>(config: Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng, &mut String) -> TestCaseResult,
    {
        let base = fnv1a(name);
        let total = config.cases;
        for i in 0..total {
            let seed = base ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::new(seed);
            let mut inputs = String::new();
            let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut inputs)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(err)) => panic!(
                    "property `{name}` failed at case {i}/{total} (seed {seed:#x}): {err}\n  inputs: {inputs}"
                ),
                Err(payload) => panic!(
                    "property `{name}` panicked at case {i}/{total} (seed {seed:#x}): {}\n  inputs: {inputs}",
                    panic_message(payload.as_ref())
                ),
            }
        }
    }
}

pub mod shrink {
    //! Greedy counterexample minimisation.
    //!
    //! Upstream proptest shrinks through a lazily-built value tree; the
    //! shim instead re-runs the property body on candidate values
    //! derived from the failing input: each [`Shrink`] impl proposes a
    //! short, deterministic candidate list ordered most-aggressive
    //! first, and [`Wrap::run`] walks greedily to a local minimum under
    //! a fixed budget. Because candidates are a pure function of the
    //! failing value, shrinking is as deterministic as the seeds.
    //!
    //! Dispatch is by inherent-over-trait method resolution: the
    //! `proptest!` macro calls `Wrap(vals).run(..)`, which binds to the
    //! inherent shrinking impl when the sampled tuple implements
    //! [`Shrink`] and silently falls back to the single-run
    //! [`RunCase`] impl otherwise (e.g. `prop_map` into a non-`Clone`
    //! domain type).

    use crate::test_runner::{panic_message, TestCaseError, TestCaseResult};
    use std::fmt::Debug;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Maximum number of candidate re-executions per failing case.
    pub const SHRINK_BUDGET: usize = 256;

    /// Values that can propose smaller versions of themselves.
    pub trait Shrink: Clone + Debug {
        /// Candidate simplifications, most aggressive first. An empty
        /// list means the value is already minimal.
        fn shrink_candidates(&self) -> Vec<Self>;
    }

    macro_rules! unsigned_shrink {
        ($($t:ty),*) => {$(
            impl Shrink for $t {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if *self != 0 {
                        out.push(0);
                        if *self > 1 {
                            out.push(*self / 2);
                        }
                        out.push(*self - 1);
                    }
                    out.dedup();
                    out
                }
            }
        )*};
    }

    unsigned_shrink!(u8, u16, u32, u64, u128, usize);

    macro_rules! signed_shrink {
        ($($t:ty),*) => {$(
            impl Shrink for $t {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if *self != 0 {
                        out.push(0);
                        if self.unsigned_abs() > 1 {
                            out.push(*self / 2);
                        }
                        out.push(*self - self.signum());
                    }
                    out.dedup();
                    out
                }
            }
        )*};
    }

    signed_shrink!(i8, i16, i32, i64, i128, isize);

    impl Shrink for f64 {
        fn shrink_candidates(&self) -> Vec<Self> {
            if *self == 0.0 || !self.is_finite() {
                return Vec::new();
            }
            let mut out = vec![0.0, *self / 2.0];
            let trunc = self.trunc();
            if trunc != *self {
                out.push(trunc);
            }
            out
        }
    }

    impl Shrink for bool {
        fn shrink_candidates(&self) -> Vec<Self> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Shrink for char {
        fn shrink_candidates(&self) -> Vec<Self> {
            if *self == 'a' {
                Vec::new()
            } else {
                vec!['a']
            }
        }
    }

    impl Shrink for String {
        fn shrink_candidates(&self) -> Vec<Self> {
            if self.is_empty() {
                return Vec::new();
            }
            let mut out = vec![String::new()];
            let chars: Vec<char> = self.chars().collect();
            if chars.len() > 1 {
                out.push(chars[..chars.len() / 2].iter().collect());
                out.push(chars[..chars.len() - 1].iter().collect());
            }
            out
        }
    }

    impl<T: Shrink> Shrink for Vec<T> {
        fn shrink_candidates(&self) -> Vec<Self> {
            if self.is_empty() {
                return Vec::new();
            }
            let mut out = vec![Vec::new()];
            if self.len() > 1 {
                out.push(self[..self.len() / 2].to_vec());
                out.push(self[..self.len() - 1].to_vec());
            }
            for (i, elem) in self.iter().enumerate() {
                for candidate in elem.shrink_candidates() {
                    let mut next = self.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }

    impl<T: Shrink> Shrink for Option<T> {
        fn shrink_candidates(&self) -> Vec<Self> {
            match self {
                None => Vec::new(),
                Some(v) => std::iter::once(None)
                    .chain(v.shrink_candidates().into_iter().map(Some))
                    .collect(),
            }
        }
    }

    macro_rules! tuple_shrink {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Shrink),+> Shrink for ($($s,)+) {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink_candidates() {
                            let mut next = self.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    tuple_shrink! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7)
    }

    /// Runs the property body once, converting a panic into a failure
    /// so the shrink loop can keep probing candidates.
    fn run_once<T>(value: T, body: &mut dyn FnMut(T) -> TestCaseResult) -> Result<(), String> {
        match catch_unwind(AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => Ok(()),
            Ok(Err(err)) => Err(err.to_string()),
            Err(payload) => Err(panic_message(payload.as_ref())),
        }
    }

    /// Pins the body closure's argument type to the sampled tuple's
    /// type so the macro expansion infers (`&_witness` is the tuple
    /// about to be moved into [`Wrap`]).
    #[doc(hidden)]
    pub fn bind_body<T, F>(_witness: &T, body: F) -> F
    where
        F: FnMut(T) -> TestCaseResult,
    {
        body
    }

    /// The dispatch point the `proptest!` macro expands to. Holds the
    /// sampled value tuple by value.
    pub struct Wrap<T>(pub T);

    impl<T: Shrink> Wrap<T> {
        /// Runs the case and, on failure, greedily minimises the
        /// counterexample, rewriting `inputs` to report both the
        /// shrunk and the originally sampled values.
        pub fn run(
            self,
            body: &mut dyn FnMut(T) -> TestCaseResult,
            inputs: &mut String,
        ) -> TestCaseResult {
            let original = self.0;
            let first_err = match run_once(original.clone(), body) {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            let sampled_repr = inputs.clone();
            let mut current = original;
            let mut current_err = first_err;
            let mut steps = 0usize;
            let mut budget = SHRINK_BUDGET;
            'minimise: while budget > 0 {
                for candidate in current.shrink_candidates() {
                    if budget == 0 {
                        break 'minimise;
                    }
                    budget -= 1;
                    if let Err(e) = run_once(candidate.clone(), body) {
                        current = candidate;
                        current_err = e;
                        steps += 1;
                        continue 'minimise;
                    }
                }
                // Every candidate passes: `current` is locally minimal.
                break;
            }
            if steps > 0 {
                *inputs = format!("{current:?} (shrunk {steps} step(s) from {sampled_repr})");
            }
            Err(TestCaseError::fail(current_err))
        }
    }

    /// Fallback for sampled tuples with no [`Shrink`] impl: run the
    /// case once and report it unshrunk. Inherent-method resolution
    /// prefers [`Wrap::run`] whenever it applies, so this only binds
    /// for non-shrinkable value types.
    pub trait RunCase {
        /// The sampled value tuple.
        type Vals;

        /// Runs the property body once with the sampled values.
        fn run(
            self,
            body: &mut dyn FnMut(Self::Vals) -> TestCaseResult,
            inputs: &mut String,
        ) -> TestCaseResult;
    }

    impl<T> RunCase for Wrap<T> {
        type Vals = T;

        fn run(
            self,
            body: &mut dyn FnMut(T) -> TestCaseResult,
            _inputs: &mut String,
        ) -> TestCaseResult {
            run_once(self.0, body).map_err(TestCaseError::fail)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for sampling random values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree and no shrinking: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every sampled value through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        /// Feeds every sampled value into `flat` to pick a second
        /// strategy, then samples that.
        fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, flat }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into a branch case. The
        /// tree depth is bounded by `depth`; `_desired_size` and
        /// `_expected_branch_size` are accepted for source
        /// compatibility only.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            // Innermost layer is pure leaf, so sampling always
            // terminates within `depth` recursions.
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                strat = Union::new(vec![(1, leaf.clone()), (2, branch)]).boxed();
            }
            strat
        }

        /// Type-erases this strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        flat: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.flat)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Weighted choice between strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// A union over weighted arms.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty or the weights sum to zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires at least one weighted arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.gen_range(0..total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_strategies!(usize, u64, u32, u16, u8, i64, i32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.sample(rng), )+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7)
    }

    /// A `Vec` of strategies samples element-wise, preserving order.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    /// A `&'static str` is interpreted as a regex (subset) and samples
    /// matching strings.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    // --- Regex-subset sampling -------------------------------------------

    enum Atom {
        /// Inclusive character ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        /// `.` — any character, biased towards printable ASCII.
        AnyChar,
        Literal(char),
    }

    struct Quantified {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse_regex(pattern: &str) -> Vec<Quantified> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((c, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in {pattern:?}"
                    );
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("quantifier lower bound"),
                                hi.trim().parse().expect("quantifier upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("quantifier count");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push(Quantified { atom, min, max });
        }
        atoms
    }

    fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u32 = ranges
            .iter()
            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
            .sum();
        let mut pick = rng.gen_range(0..total);
        for (lo, hi) in ranges {
            let span = *hi as u32 - *lo as u32 + 1;
            if pick < span {
                return char::from_u32(*lo as u32 + pick)
                    .expect("character class range crosses surrogates");
            }
            pick -= span;
        }
        unreachable!("class pick exceeded total span")
    }

    fn sample_any_char(rng: &mut TestRng) -> char {
        const MARKUP: &[char] = &['<', '>', '&', ';', '"', '\'', '=', '/', '\n', '\t'];
        match rng.gen_range(0u32..100) {
            // Mostly printable ASCII so parser tests see realistic text...
            0..=91 => char::from_u32(rng.gen_range(0x20u32..=0x7E)).unwrap(),
            // ...with a deliberate bias towards markup metacharacters...
            92..=96 => MARKUP[rng.gen_range(0..MARKUP.len())],
            // ...and an occasional arbitrary Unicode scalar.
            _ => loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x0010_FFFF)) {
                    break c;
                }
            },
        }
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for q in parse_regex(pattern) {
            let count = rng.gen_range(q.min..=q.max);
            for _ in 0..count {
                match &q.atom {
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                    Atom::AnyChar => out.push(sample_any_char(rng)),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Samples one value from the full domain.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            // Finite, uniform in [-1e9, 1e9] — friendlier to numeric
            // properties than raw bit patterns (upstream's choice).
            rng.gen_range(-1.0e9..=1.0e9)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<A> Copy for Any<A> {}

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary_with(rng)
        }
    }

    /// A strategy over the whole domain of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Samples `Vec`s whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace re-export so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]`-able function running [`test_runner::run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng, __inputs| {
                let __vals = ( $( $crate::strategy::Strategy::sample(&($strat), __rng), )+ );
                *__inputs = format!("{:?}", __vals);
                let mut __body = $crate::shrink::bind_body(&__vals, |__v| {
                    let ( $($pat,)+ ) = __v;
                    let __case = || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
                // Inherent-over-trait dispatch: shrinks when the
                // sampled tuple implements `Shrink`, single-runs
                // otherwise.
                #[allow(unused_imports)]
                use $crate::shrink::RunCase as _;
                $crate::shrink::Wrap(__vals).run(&mut __body, __inputs)
            });
        }
    )*};
}

/// Fails the current case (by early `return`) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_samples_match_their_pattern() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let ident = Strategy::sample(&"[a-zA-Z][a-zA-Z0-9_.-]{0,10}", &mut rng);
            let mut chars = ident.chars();
            let head = chars.next().expect("head atom has {1,1} quantifier");
            assert!(head.is_ascii_alphabetic(), "{ident:?}");
            assert!(ident.len() <= 11, "{ident:?}");
            for c in chars {
                assert!(
                    c.is_ascii_alphanumeric() || "_.-".contains(c),
                    "{ident:?} contains {c:?}"
                );
            }
            let free = Strategy::sample(&".{0,5}", &mut rng);
            assert!(free.chars().count() <= 5, "{free:?}");
        }
    }

    #[test]
    fn union_respects_zero_weight_arms_absence() {
        let mut rng = TestRng::new(5);
        let union = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&union, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(77);
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut saw_node = false;
        for _ in 0..100 {
            let t = Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 5);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion never branched in 100 samples");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_every_binding(
            (a, b) in (0usize..10, 10usize..20),
            v in prop::collection::vec(0u64..5, 1..4),
            s in "[a-c]{2,3}",
        ) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!((2..=3).contains(&s.len()));
            prop_assert_eq!(s.chars().filter(|c| ('a'..='c').contains(c)).count(), s.len());
        }
    }

    #[test]
    fn shrinker_reaches_the_boundary_counterexample() {
        use crate::shrink::Wrap;
        // Fails iff x >= 10; greedy halving from 57 must land exactly
        // on the boundary value 10.
        let mut body = |(x,): (u32,)| {
            if x >= 10 {
                Err(TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        };
        let mut inputs = format!("{:?}", (57u32,));
        let result = Wrap((57u32,)).run(&mut body, &mut inputs);
        assert!(result.is_err());
        assert!(inputs.starts_with("(10,)"), "{inputs}");
        assert!(
            inputs.contains("shrunk") && inputs.contains("(57,)"),
            "{inputs}"
        );
    }

    #[test]
    fn shrinker_truncates_vecs_and_minimises_elements() {
        use crate::shrink::Wrap;
        let mut body = |(v,): (Vec<u32>,)| {
            if v.iter().any(|&x| x >= 5) {
                Err(TestCaseError::fail("element too big"))
            } else {
                Ok(())
            }
        };
        let sampled = vec![7u32, 1, 9, 3];
        let mut inputs = format!("{:?}", (sampled.clone(),));
        let result = Wrap((sampled,)).run(&mut body, &mut inputs);
        assert!(result.is_err());
        assert!(inputs.starts_with("([5],)"), "{inputs}");
    }

    #[test]
    fn shrinking_is_deterministic() {
        use crate::shrink::Wrap;
        let run = || {
            let mut body = |(x, v): (i64, Vec<u8>)| {
                if x.unsigned_abs() as usize + v.len() > 6 {
                    Err(TestCaseError::fail("sum too big"))
                } else {
                    Ok(())
                }
            };
            let mut inputs = format!("{:?}", (-40i64, vec![1u8, 2, 3]));
            let _ = Wrap((-40i64, vec![1u8, 2, 3])).run(&mut body, &mut inputs);
            inputs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shrinker_shrinks_panicking_bodies() {
        use crate::shrink::Wrap;
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let mut body = |(x,): (u32,)| {
            assert!(x < 10, "boundary");
            Ok(())
        };
        let mut inputs = format!("{:?}", (200u32,));
        let result = Wrap((200u32,)).run(&mut body, &mut inputs);
        std::panic::set_hook(hook);
        assert!(result.is_err());
        assert!(inputs.starts_with("(10,)"), "{inputs}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn non_shrinkable_values_fall_back_to_a_single_run(
            v in (0u32..5).prop_map(NoClone),
        ) {
            prop_assert!(v.0 < 5);
        }
    }

    /// Deliberately neither `Clone` nor `Shrink`: exercises the
    /// `RunCase` fallback path of the macro expansion.
    #[derive(Debug)]
    struct NoClone(u32);

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                ProptestConfig::with_cases(8),
                "always_fails",
                |rng, inputs| {
                    let v = Strategy::sample(&(0u32..100), rng);
                    *inputs = format!("{v:?}");
                    Err(TestCaseError::fail("nope"))
                },
            );
        });
        let msg = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic carries a String"),
            Ok(()) => panic!("runner swallowed the failure"),
        };
        assert!(
            msg.contains("always_fails") && msg.contains("nope"),
            "{msg}"
        );
        assert!(msg.contains("inputs:"), "{msg}");
    }
}
