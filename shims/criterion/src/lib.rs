//! Dependency-free stand-in for the [`criterion`] benchmark harness.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the API subset its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`] and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Measurement model: each benchmark is calibrated once to pick an
//! iteration count that makes a sample take roughly
//! [`TARGET_SAMPLE_TIME`], warmed up, then timed for `sample_size`
//! samples. The mean / median / min time per iteration is printed to
//! stdout. No statistical outlier analysis, no HTML reports, no
//! baseline comparison — read the numbers side by side.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample time the calibrator aims for.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);

/// Opaque to the optimizer: prevents the benchmarked expression from
/// being folded away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id rendering `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark, passing `input` through to the routine.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (printing happens per benchmark; this is a no-op
    /// kept for source compatibility).
    pub fn finish(self) {}
}

/// Times a closure; handed to benchmark routines.
#[derive(Debug)]
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, storing per-iteration timings for the report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fill one target sample?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        // Brief warmup so caches and branch predictors settle.
        let warmup = (iters / 2).max(1);
        for _ in 0..warmup {
            black_box(f());
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples — routine never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{label:<40} mean {:>12} median {:>12} min {:>12} ({} samples)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            self.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).map(|i| i * i).sum::<u64>()
            });
        });
        group.finish();
        assert!(ran > 3, "bencher should iterate more than once per sample");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(1000).0, "1000");
        assert_eq!(BenchmarkId::new("probe", 7).0, "probe/7");
    }
}
