//! Dependency-free stand-in for the [`rayon`] data-parallelism crate.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the API subset it uses: `par_iter()` /
//! `into_par_iter()` → [`ParallelIterator::map`] →
//! [`ParallelIterator::collect`], plus [`join`].
//!
//! Execution model: no work-stealing pool. A parallel map materialises
//! its input, splits it into one contiguous chunk per available core,
//! and runs the chunks on scoped OS threads ([`std::thread::scope`]),
//! reassembling results **in input order** — callers observe the same
//! ordering guarantees as rayon's indexed `collect`. On a single-core
//! host (or for single-element inputs) it degrades to a plain
//! sequential map with zero thread overhead, which keeps results
//! bit-identical across machines.

#![forbid(unsafe_code)]

use std::thread;

/// One-stop import mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel stage may use.
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined closure panicked"))
    })
}

/// Applies `f` to every item on one thread per chunk, preserving order.
fn par_apply<T, O, F>(items: Vec<T>, f: &F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    })
}

/// An eager, order-preserving parallel iterator.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Evaluates the pipeline, returning items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f`; the map runs in parallel when the
    /// pipeline is driven.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the evaluated pipeline into `C`, preserving order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs `f` on every item (in parallel) for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        par_apply(self.drive(), &|item| f(item));
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    O: Send,
    F: Fn(S::Item) -> O + Sync,
{
    type Item = O;
    fn drive(self) -> Vec<O> {
        par_apply(self.base.drive(), &self.f)
    }
}

/// A materialised sequence acting as the pipeline source.
pub struct VecPar<T>(Vec<T>);

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.0
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The produced pipeline source.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecPar<T>;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar(self)
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecPar<usize>;
    fn into_par_iter(self) -> VecPar<usize> {
        VecPar(self.collect())
    }
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;
    /// The produced pipeline source.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecPar<&'a T>;
    fn par_iter(&'a self) -> VecPar<&'a T> {
        VecPar(self.iter().collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecPar<&'a T>;
    fn par_iter(&'a self) -> VecPar<&'a T> {
        VecPar(self.iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
        let owned: Vec<String> = input.into_par_iter().map(|x| x.to_string()).collect();
        assert_eq!(owned[42], "42");
        assert_eq!(owned.len(), 1000);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * 3)
            .collect();
        assert_eq!(out, (0..100).map(|x| (x + 1) * 3).collect::<Vec<usize>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 6 * 7, || "qasom");
        assert_eq!((a, b), (42, "qasom"));
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
