//! `qasom-cli` — run the middleware against XML-provisioned environments.
//!
//! ```text
//! qasom-cli --services services.xml --classes classes.xml --task shop-v1 \
//!           [--taxonomy taxonomy.xml] [--constraint Delay=1.5s]... \
//!           [--weight Delay=2]... [--seed 42] [--verbose] [--report FILE]
//! qasom-cli report [--seed 42] [--schema] [--out FILE]
//! qasom-cli check [--seed 42] [--preemptions 3] [--out FILE]
//! qasom-cli stress [--seed 42] [--sessions 12] [--out FILE]
//! qasom-cli daemon-stress [--seed 42] [--rounds 12] [--clients 4]
//!                         [--queue 6] [--quota 2] [--batch 4] [--out FILE]
//! qasom-cli hotpath-stress [--seed 42] [--services 64] [--rounds 12] [--out FILE]
//! qasom-cli cluster-stress [--seed 42] [--services 10000,100000]
//!                          [--shards 1,2,4,8] [--sessions 8] [--out FILE]
//! qasom-cli persist-stress [--seed 42] [--services 200] [--rounds 24]
//!                          [--checkpoint-every 16] [--out FILE]
//! ```
//!
//! * `--services`  QSD document (see `qasom_registry::qsd`).
//! * `--classes`   task-class document (`<taskclasses>`).
//! * `--task`      name of the behaviour to request.
//! * `--taxonomy`  optional concept taxonomy:
//!   `<ontology ns="shop"><concept name="Pay"><concept name="PayByCard"/></concept></ontology>`
//!   (functions not listed match syntactically).
//! * `--constraint NAME=VALUE[UNIT]` e.g. `Delay=1.5s`, `TotalPrice=30EUR`.
//! * `--weight NAME=W` preference weights.
//! * `--report FILE` write the seed-stamped [`RunReport`] JSON of this
//!   run to `FILE` (`-` for stdout).
//!
//! The `report` subcommand runs the builtin deterministic end-to-end
//! scenario ([`qasom::demo`]) and prints its `RunReport` JSON: identical
//! seeds produce byte-identical output. With `--schema` it prints the
//! report's sorted key paths instead — the exact content of
//! `tests/fixtures/run_report_schema.txt`, so the fixture regenerates
//! with `qasom-cli report --schema --out tests/fixtures/run_report_schema.txt`.
//!
//! The `stress` subcommand runs a fixed, single-threaded serving
//! scenario over a [`qasom::SharedEnvironment`] (typed sessions
//! interleaved with `RegistryDelta` churn) and prints the resulting
//! `RunReport`, serving counters included — the determinism oracle CI
//! `cmp`s across repeats.
//!
//! The `daemon-stress` subcommand drives the `qasomd` broker over the
//! in-process loopback transport (`qasom_daemon::stress`): several
//! clients submit batched hot requests past their admission quotas,
//! with provider churn between rounds. The printed `RunReport` carries
//! the `daemon.*` counters and is byte-identical for identical
//! arguments.
//!
//! The `hotpath-stress` subcommand composes an eight-activity task over
//! a synthetic provider market and then alternates provider churn with
//! `recompose` calls, exercising the delta-QASSA re-selection path and
//! (via periodic infrastructure perturbations) its full-recompose
//! fallback. The printed `RunReport` carries the `hotpath` section and
//! `selection.delta.*` counters and is byte-identical for identical
//! arguments — the determinism oracle CI `cmp`s across repeats.
//!
//! The `persist-stress` subcommand is the kill-and-replay determinism
//! harness for the registry persistence layer (DESIGN.md §14): seeded
//! churn runs over a journaled in-memory backend, and at every round
//! the durable bytes are forked (the crash image) and recovered — the
//! recovered registry must be byte-identical to the never-crashed
//! oracle (state encoding, capability index, epoch, WAL cursor), and a
//! deliberately torn fork must recover cleanly and deterministically.
//! The emitted JSON is byte-identical for identical arguments.
//!
//! The `cluster-stress` subcommand sweeps the clustered registry
//! (`qasom_cluster`) over shard counts at several service-pool scales:
//! for each cell it runs the gossip replication plane over the network
//! simulator, then assembles the converged shards into a serving
//! environment and drives sessions through the daemon's loopback frame
//! transport. The emitted JSON reports modelled discovery latency and
//! session throughput per `(services, shards)` cell and is
//! byte-identical for identical arguments.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use qasom::{
    demo, Environment, EventLog, RegistryDelta, ServeOutcome, SessionRequest, SharedEnvironment,
    UserRequest,
};
use qasom_cluster::{ClusterBridge, ClusterConfig, ClusterSim, ShardSet};
use qasom_daemon::stress::StressConfig;
use qasom_daemon::{AdmissionConfig, BrokerConfig};
use qasom_netsim::runtime::SyntheticService;
use qasom_obs::report::{ComposeSection, ExecutionSection, RunReport};
use qasom_obs::{key_paths, JsonValue, MemoryRecorder, Recorder};
use qasom_ontology::{ConceptId, Ontology, OntologyBuilder};
use qasom_qos::{QosModel, QosVector, Unit};
use qasom_registry::ServiceDescription;
use qasom_task::xml::{self, XmlElement};
use qasom_task::{Activity, TaskNode, UserTask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> ExitCode {
    let outcome = match std::env::args().nth(1).as_deref() {
        Some("report") => run_report_subcommand(),
        Some("check") => run_check_subcommand(),
        Some("stress") => run_stress_subcommand(),
        Some("daemon-stress") => run_daemon_stress_subcommand(),
        Some("hotpath-stress") => run_hotpath_stress_subcommand(),
        Some("cluster-stress") => run_cluster_stress_subcommand(),
        Some("persist-stress") => run_persist_stress_subcommand(),
        _ => run(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `qasom-cli report [--seed N] [--schema] [--out FILE]`: the builtin
/// deterministic scenario, exported as pretty-printed `RunReport` JSON —
/// or, with `--schema`, as its sorted key paths.
fn run_report_subcommand() -> Result<(), String> {
    let mut seed = 42u64;
    let mut schema = false;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let raw = value("--seed")?;
                seed = raw.parse().map_err(|_| format!("bad seed {raw:?}"))?;
            }
            "--schema" => schema = true,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!("usage: qasom-cli report [--seed N] [--schema] [--out FILE]");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try report --help)")),
        }
    }
    let mut report = demo::demo_run_report(seed);
    // The demo scenario serves one host; the cluster section comes from
    // a companion clustered run at the same seed, so the report (and the
    // schema fixture) covers the sharded registry too.
    let cluster = ClusterSim::new(ClusterConfig::default()).run(seed);
    report.cluster = Some(cluster.to_section());
    if schema {
        let paths = key_paths(&report.to_json()).join("\n");
        return write_text(&paths, out.as_deref());
    }
    write_report(&report, out.as_deref())
}

/// `qasom-cli check [--seed N] [--preemptions N] [--out FILE]`: the
/// deterministic schedule-exploring race checker (`qasom_analysis::check`)
/// over the standard protocol-model suite, exported as pretty-printed
/// `RunReport` JSON with the `check` section and `check.*` counters —
/// byte-identical for identical arguments. Fails when any model
/// deadlocks or violates its invariants.
fn run_check_subcommand() -> Result<(), String> {
    let mut cfg = qasom_analysis::check::SuiteConfig::default();
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let raw = value("--seed")?;
                cfg.seed = raw.parse().map_err(|_| format!("bad seed {raw:?}"))?;
            }
            "--preemptions" => {
                let raw = value("--preemptions")?;
                cfg.preemption_bound = raw
                    .parse()
                    .map_err(|_| format!("bad preemption bound {raw:?}"))?;
            }
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!("usage: qasom-cli check [--seed N] [--preemptions N] [--out FILE]");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try check --help)")),
        }
    }
    let suite = qasom_analysis::check::run_suite(&cfg);
    let recorder = MemoryRecorder::new();
    suite.record(&recorder);
    let mut report = RunReport::new(cfg.seed, "check");
    report.check = Some(suite.to_section());
    if let Some(snapshot) = recorder.snapshot() {
        report.metrics = snapshot;
    }
    write_report(&report, out.as_deref())?;
    if !suite.ok() {
        return Err(format!(
            "model checking failed: {} deadlock(s), {} violation(s) across {} schedules",
            suite.deadlocks(),
            suite.violations(),
            suite.schedules()
        ));
    }
    Ok(())
}

/// `qasom-cli stress [--seed N] [--sessions N] [--out FILE]`: a fixed,
/// single-threaded interleaving of serving sessions and provider churn
/// over a `SharedEnvironment`, exported as pretty-printed `RunReport`
/// JSON — byte-identical for identical arguments.
fn run_stress_subcommand() -> Result<(), String> {
    let mut seed = 42u64;
    let mut sessions = 12usize;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let raw = value("--seed")?;
                seed = raw.parse().map_err(|_| format!("bad seed {raw:?}"))?;
            }
            "--sessions" => {
                let raw = value("--sessions")?;
                sessions = raw
                    .parse()
                    .map_err(|_| format!("bad session count {raw:?}"))?;
            }
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!("usage: qasom-cli stress [--seed N] [--sessions N] [--out FILE]");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try stress --help)")),
        }
    }
    let report = stress_run_report(seed, sessions)?;
    write_report(&report, out.as_deref())
}

/// `qasom-cli daemon-stress [--seed N] [--rounds N] [--clients N]
/// [--queue N] [--quota N] [--batch N] [--out FILE]`: the scripted
/// broker workload over the loopback transport (see
/// `qasom_daemon::stress`), exported as pretty-printed `RunReport` JSON
/// with the `daemon.*` counters — byte-identical for identical
/// arguments.
fn run_daemon_stress_subcommand() -> Result<(), String> {
    let defaults = AdmissionConfig {
        queue_capacity: 6,
        client_quota: 2,
        batch_max: 4,
    };
    let mut config = StressConfig {
        seed: 42,
        rounds: 12,
        clients: 4,
        admission: defaults,
    };
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => config.seed = parse_num(&value("--seed")?)?,
            "--rounds" => config.rounds = parse_num(&value("--rounds")?)?,
            "--clients" => config.clients = parse_num(&value("--clients")?)?,
            "--queue" => config.admission.queue_capacity = parse_num(&value("--queue")?)?,
            "--quota" => config.admission.client_quota = parse_num(&value("--quota")?)?,
            "--batch" => config.admission.batch_max = parse_num(&value("--batch")?)?,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: qasom-cli daemon-stress [--seed N] [--rounds N] [--clients N]\n\
                     \x20      [--queue N] [--quota N] [--batch N] [--out FILE]"
                );
                return Ok(());
            }
            other => {
                return Err(format!("unknown flag {other:?} (try daemon-stress --help)"));
            }
        }
    }
    let report = qasom_daemon::stress::stress_report(&config)?;
    write_report(&report, out.as_deref())
}

/// `qasom-cli hotpath-stress [--seed N] [--services N] [--rounds N]
/// [--out FILE]`: an eight-activity composition followed by scripted
/// churn-and-recompose rounds through the delta-QASSA path, exported as
/// pretty-printed `RunReport` JSON (with the `hotpath` section) —
/// byte-identical for identical arguments.
fn run_hotpath_stress_subcommand() -> Result<(), String> {
    let mut seed = 42u64;
    let mut services = 64usize;
    let mut rounds = 12usize;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => seed = parse_num(&value("--seed")?)?,
            "--services" => services = parse_num(&value("--services")?)?,
            "--rounds" => rounds = parse_num(&value("--rounds")?)?,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: qasom-cli hotpath-stress [--seed N] [--services N] [--rounds N] [--out FILE]"
                );
                return Ok(());
            }
            other => {
                return Err(format!(
                    "unknown flag {other:?} (try hotpath-stress --help)"
                ));
            }
        }
    }
    let report = hotpath_stress_run_report(seed, services, rounds)?;
    write_report(&report, out.as_deref())
}

/// The scripted scenario behind `qasom-cli hotpath-stress`: a synthetic
/// market of `services` providers over eight function concepts, one
/// compose, then `rounds` rounds that each deploy a fast newcomer and
/// `recompose` — with periodic departures (delta handles the chosen
/// service leaving) and periodic infrastructure perturbations (which
/// disqualify cached levels and force the full-recompose fallback, so
/// both `selection.delta.incremental` and
/// `selection.delta.full_recomposes` come out non-zero).
fn hotpath_stress_run_report(
    seed: u64,
    services: usize,
    rounds: usize,
) -> Result<RunReport, String> {
    const ACTIVITIES: usize = 8;
    let mut builder = OntologyBuilder::new("hp");
    for i in 0..ACTIVITIES {
        builder.concept(&format!("A{i}"));
    }
    let ontology = builder.build().map_err(|e| e.to_string())?;
    let mut env = Environment::new(QosModel::standard(), ontology, seed);
    let recorder = Arc::new(MemoryRecorder::new());
    env.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
    let rt = env
        .model()
        .property("ResponseTime")
        .ok_or("the standard model defines ResponseTime")?;
    let av = env
        .model()
        .property("Availability")
        .ok_or("the standard model defines Availability")?;
    let per = (services / ACTIVITIES).max(1);
    for ci in 0..ACTIVITIES {
        for i in 0..per {
            let desc = ServiceDescription::new(format!("s{ci}-{i}"), format!("hp#A{ci}").as_str())
                .with_qos(rt, 40.0 + ((i * 7_919 + ci * 13) % 1_000) as f64)
                .with_qos(av, 0.90 + ((i * 104_729 + ci) % 100) as f64 / 1_000.0);
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
    }
    let task = UserTask::new(
        "hotpath",
        TaskNode::sequence((0..ACTIVITIES).map(|i| {
            TaskNode::activity(Activity::new(format!("a{i}"), format!("hp#A{i}").as_str()))
        })),
    )
    .map_err(|e| e.to_string())?;
    let request = UserRequest::new(task)
        .constraint("ResponseTime", 10.0, Unit::Seconds)
        .map_err(|e| e.to_string())?
        .weight("ResponseTime", 0.7)
        .weight("Availability", 0.3);
    let mut composition = env.compose(&request).map_err(|e| e.to_string())?;
    for round in 0..rounds {
        let ci = round % ACTIVITIES;
        let desc = ServiceDescription::new(format!("late{round}"), format!("hp#A{ci}").as_str())
            .with_qos(rt, 35.0 - (round % 7) as f64)
            .with_qos(av, 0.999);
        let nominal = desc.qos().clone();
        let id = env.deploy(desc, SyntheticService::new(nominal));
        composition = env.recompose(&composition).map_err(|e| e.to_string())?;
        if round % 3 == 2 {
            // The newcomer just won its activity; its departure makes the
            // chosen service vanish mid-composition.
            env.undeploy(id);
            composition = env.recompose(&composition).map_err(|e| e.to_string())?;
        }
        if round % 5 == 4 {
            // A perceived-QoS perturbation outside the registry event log:
            // the cached levels are stale and delta must fall back to a
            // full recompose.
            env.set_infrastructure(round as u64, QosVector::new());
            composition = env.recompose(&composition).map_err(|e| e.to_string())?;
        }
    }
    Ok(env.run_report("hotpath-stress"))
}

/// `qasom-cli cluster-stress [--seed N] [--services L] [--shards L]
/// [--sessions N] [--out FILE]`: the clustered-registry sweep. `L` is a
/// comma list (`10000,100000`, `1,2,4,8`). Each `(services, shards)`
/// cell runs the gossip plane over the simulator and then serves
/// sessions against the assembled shards; the emitted JSON is
/// byte-identical for identical arguments — the determinism oracle CI
/// `cmp`s across repeats.
fn run_cluster_stress_subcommand() -> Result<(), String> {
    let mut seed = 42u64;
    let mut scales = vec![10_000usize, 100_000];
    let mut shard_counts = vec![1usize, 2, 4, 8];
    let mut sessions = 8usize;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => seed = parse_num(&value("--seed")?)?,
            "--services" => scales = parse_num_list(&value("--services")?)?,
            "--shards" => shard_counts = parse_num_list(&value("--shards")?)?,
            "--sessions" => sessions = parse_num(&value("--sessions")?)?,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: qasom-cli cluster-stress [--seed N] [--services N,N...]\n\
                     \x20      [--shards N,N...] [--sessions N] [--out FILE]"
                );
                return Ok(());
            }
            other => {
                return Err(format!(
                    "unknown flag {other:?} (try cluster-stress --help)"
                ));
            }
        }
    }
    if scales.is_empty() || shard_counts.is_empty() {
        return Err("at least one service scale and one shard count are required".into());
    }
    let doc = cluster_stress_json(seed, &scales, &shard_counts, sessions)?;
    write_text(&doc.to_pretty(), out.as_deref())
}

/// One `(services, shards)` sweep cell → the bench figures document.
///
/// Discovery latency is the modelled scatter/gather figure from the
/// simulated replication run (one fan-out round trip plus the widest
/// shard's evaluation work). Session throughput is modelled from it:
/// sessions serialise behind the discovery fan-out, so a narrower
/// widest-shard raises throughput as shards are added.
fn cluster_stress_json(
    seed: u64,
    scales: &[usize],
    shard_counts: &[usize],
    sessions: usize,
) -> Result<JsonValue, String> {
    const FUNCTIONS: usize = 6;
    let model = QosModel::standard();
    let mut figures: Vec<JsonValue> = Vec::new();
    for &services in scales {
        for &shards in shard_counts {
            // Replication plane: gossip the pool across the shards over
            // the network simulator and audit against the oracle.
            let cfg = ClusterConfig {
                shards,
                services,
                functions: FUNCTIONS,
                churn_rounds: 4,
                churn_per_round: 8,
                ..ClusterConfig::default()
            };
            let report = ClusterSim::new(cfg).run(seed);
            if !report.converged || !report.oracle_match {
                return Err(format!(
                    "cluster run diverged at {services} services / {shards} shards"
                ));
            }

            // Serving plane: an identically-seeded deterministic shard
            // set, assembled and driven through the loopback daemon.
            let ontology = ClusterSim::build_ontology(FUNCTIONS);
            let mut origin = qasom_registry::ServiceRegistry::with_ontology(Arc::clone(&ontology));
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
            for j in 0..services {
                let f = rng.gen_range(0..FUNCTIONS);
                let sub = rng.gen_range(0..2) == 1;
                let iri = if sub {
                    format!("cl#F{f}Sub")
                } else {
                    format!("cl#F{f}")
                };
                let mut desc = ServiceDescription::new(format!("s{j}"), iri.as_str());
                if let Some(rt) = model.property("ResponseTime") {
                    desc = desc.with_qos(rt, 10.0 + f64::from(rng.gen_range(0..90u32)));
                }
                if let Some(av) = model.property("Availability") {
                    desc = desc.with_qos(av, 0.9 + f64::from(rng.gen_range(0..10u32)) / 100.0);
                }
                origin.register(desc);
            }
            let mut set = ShardSet::new(shards, Arc::clone(&ontology));
            set.sync_all(&origin);
            let bridge = ClusterBridge::assemble(&set, seed);
            let task = UserTask::new(
                "cluster-probe",
                TaskNode::sequence(vec![
                    TaskNode::activity(Activity::new("first", "cl#F0")),
                    TaskNode::activity(Activity::new("second", "cl#F1")),
                ]),
            )
            .map_err(|e| e.to_string())?;
            let request = UserRequest::new(task).weight("ResponseTime", 1.0);
            let requests = vec![request; sessions];
            let broker = BrokerConfig {
                admission: AdmissionConfig {
                    queue_capacity: sessions.max(8),
                    client_quota: sessions.max(8),
                    batch_max: 8,
                },
            };
            let served = bridge.serve_sessions(&requests, broker, 64);

            let latency_us = report.scatter_latency_us.max(1);
            let throughput = if served.submitted == 0 {
                0.0
            } else {
                served.completed as f64 * 1_000_000.0
                    / (served.submitted as f64 * latency_us as f64)
            };
            figures.push(
                JsonValue::object()
                    .field("services", services)
                    .field("shards", shards)
                    .field("discovery_latency_us", report.scatter_latency_us)
                    .field("session_throughput_per_s", throughput)
                    .field("sessions_submitted", served.submitted)
                    .field("sessions_completed", served.completed)
                    .field("sessions_failed", served.failed)
                    .field("gossip_rounds", report.gossip_rounds)
                    .field("deltas_shipped", report.deltas_shipped)
                    .field("events_replicated", report.events_replicated)
                    .field("snapshot_fallbacks", report.snapshot_fallbacks)
                    .field("retries", report.retries)
                    .field("converged", report.converged)
                    .field("oracle_match", report.oracle_match)
                    .field("coverage_ratio", report.coverage_ratio())
                    .field("max_staleness_events", report.max_staleness_events)
                    .field("sim_time_us", report.net.sim_time_us),
            );
        }
    }
    Ok(JsonValue::object()
        .field("bench", "cluster")
        .field("seed", seed)
        .field("sessions", sessions)
        .field("figures", figures))
}

/// `qasom-cli persist-stress [--seed N] [--services N] [--rounds N]
/// [--checkpoint-every N] [--out FILE]`: the kill-and-replay
/// determinism harness. Seeded churn over a journaled registry; after
/// every round the durable bytes are forked as a crash image and
/// recovered, and the recovered registry is compared byte-for-byte
/// against the never-crashed oracle. Fails on the first divergence.
fn run_persist_stress_subcommand() -> Result<(), String> {
    let mut seed = 42u64;
    let mut services = 200usize;
    let mut rounds = 24usize;
    let mut checkpoint_every = 16usize;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => seed = parse_num(&value("--seed")?)?,
            "--services" => services = parse_num(&value("--services")?)?,
            "--rounds" => rounds = parse_num(&value("--rounds")?)?,
            "--checkpoint-every" => checkpoint_every = parse_num(&value("--checkpoint-every")?)?,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: qasom-cli persist-stress [--seed N] [--services N] [--rounds N]\n\
                     \x20      [--checkpoint-every N] [--out FILE]"
                );
                return Ok(());
            }
            other => {
                return Err(format!(
                    "unknown flag {other:?} (try persist-stress --help)"
                ));
            }
        }
    }
    let doc = persist_stress_json(seed, services, rounds, checkpoint_every)?;
    write_text(&doc.to_pretty(), out.as_deref())
}

/// The seeded kill-and-replay scenario behind `qasom-cli persist-stress`.
fn persist_stress_json(
    seed: u64,
    services: usize,
    rounds: usize,
    checkpoint_every: usize,
) -> Result<JsonValue, String> {
    use qasom_registry::persist::{encode_state, MemoryBackend, PersistConfig, PersistentRegistry};

    const FUNCTIONS: usize = 4;
    let mut builder = OntologyBuilder::new("ps");
    for f in 0..FUNCTIONS {
        let base = builder.concept(&format!("F{f}"));
        builder.subconcept(&format!("F{f}Sub"), base);
    }
    let ontology = Arc::new(builder.build().map_err(|e| e.to_string())?);
    let model = QosModel::standard();
    let config = PersistConfig { checkpoint_every };

    let backend = MemoryBackend::new();
    let (mut oracle, boot) =
        PersistentRegistry::open(backend.clone(), config, Some(Arc::clone(&ontology)))
            .map_err(|e| e.to_string())?;
    if boot.recovered_anything() {
        return Err("fresh in-memory backend reported recovered state".into());
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a57_1e55);
    let mut next_name = 0usize;
    let mut deploy = |oracle: &mut PersistentRegistry, rng: &mut StdRng| -> Result<(), String> {
        let f = rng.gen_range(0..FUNCTIONS);
        let iri = if rng.gen_range(0..2) == 1 {
            format!("ps#F{f}Sub")
        } else {
            format!("ps#F{f}")
        };
        let mut desc = ServiceDescription::new(format!("s{next_name}"), iri.as_str());
        next_name += 1;
        if let Some(rt) = model.property("ResponseTime") {
            desc = desc.with_qos(rt, 10.0 + f64::from(rng.gen_range(0..90u32)));
        }
        if let Some(av) = model.property("Availability") {
            desc = desc.with_qos(av, 0.9 + f64::from(rng.gen_range(0..10u32)) / 100.0);
        }
        oracle.register(desc).map_err(|e| e.to_string())?;
        Ok(())
    };

    for _ in 0..services {
        deploy(&mut oracle, &mut rng)?;
    }

    // Kill-and-replay at a crash image: the recovered registry must be
    // byte-identical to the never-crashed oracle.
    let verify = |oracle: &PersistentRegistry, image: MemoryBackend| -> Result<(), String> {
        let (recovered, _) = PersistentRegistry::open(image, config, Some(Arc::clone(&ontology)))
            .map_err(|e| format!("recovery failed: {e}"))?;
        if encode_state(recovered.registry()) != encode_state(oracle.registry()) {
            return Err("recovered state bytes diverge from the oracle".into());
        }
        if !recovered.registry().index_eq(oracle.registry()) {
            return Err("recovered capability index diverges from the oracle".into());
        }
        if !recovered.registry().index_matches_rebuild() {
            return Err("recovered capability index fails the rebuild oracle".into());
        }
        if recovered.registry().event_cursor() != oracle.registry().event_cursor() {
            return Err("recovered epoch diverges from the oracle".into());
        }
        if recovered.journal().wal_cursor() != oracle.journal().wal_cursor() {
            return Err("recovered WAL cursor diverges from the oracle".into());
        }
        Ok(())
    };

    let mut crash_points = 0u64;
    let mut torn_drills = 0u64;
    verify(&oracle, backend.fork())?;
    crash_points += 1;

    for round in 0..rounds {
        // Churn: a few arrivals, sometimes a departure of a random live
        // service.
        for _ in 0..1 + round % 3 {
            deploy(&mut oracle, &mut rng)?;
        }
        if oracle.registry().len() > 4 && rng.gen_range(0..2) == 1 {
            let live: Vec<_> = oracle.registry().iter().map(|(id, _)| id).collect();
            let id = live[rng.gen_range(0..live.len())];
            oracle.deregister(id).map_err(|e| e.to_string())?;
        }

        verify(&oracle, backend.fork())?;
        crash_points += 1;

        // Torn-tail drill: tear the crash image's WAL tail and require
        // a clean, deterministic recovery (no panic, no partial
        // replay — two recoveries of the same torn image agree).
        let torn = backend.fork();
        if torn.wal_len() > 0 {
            use qasom_registry::persist::Persistence;
            let mut wal = torn.wal_bytes().map_err(|e| e.to_string())?;
            let last = wal.len() - 1;
            wal[last] ^= 0xA5;
            torn.set_wal(wal);
            let (first, report) =
                PersistentRegistry::open(torn.fork(), config, Some(Arc::clone(&ontology)))
                    .map_err(|e| format!("torn-tail recovery failed: {e}"))?;
            if !report.torn_tail {
                return Err("torn tail was not detected".into());
            }
            let (second, _) = PersistentRegistry::open(torn, config, Some(Arc::clone(&ontology)))
                .map_err(|e| format!("torn-tail re-recovery failed: {e}"))?;
            if encode_state(first.registry()) != encode_state(second.registry()) {
                return Err("torn-tail recovery is not deterministic".into());
            }
            if !first.registry().index_matches_rebuild() {
                return Err("torn-tail recovery broke the capability index".into());
            }
            torn_drills += 1;
        }
    }

    let stats = oracle.journal().stats();
    Ok(JsonValue::object()
        .field("bench", "persist")
        .field("seed", seed)
        .field("services", services)
        .field("rounds", rounds)
        .field("checkpoint_every", checkpoint_every)
        .field("crash_points_verified", crash_points)
        .field("torn_tail_drills", torn_drills)
        .field("final_epoch", oracle.registry().event_cursor())
        .field("live_services", oracle.registry().len())
        .field("wal_appends", stats.appends)
        .field("wal_bytes", stats.wal_bytes)
        .field("checkpoints", stats.checkpoints)
        .field("oracle_match", true))
}

fn parse_num_list(raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("could not parse {s:?} in {raw:?} as a number"))
        })
        .collect()
}

fn parse_num<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("could not parse {raw:?} as a number"))
}

/// The scripted serving scenario behind `qasom-cli stress`: six stable
/// providers, a provider toggled every third round, one typed session
/// per round.
fn stress_run_report(seed: u64, sessions: usize) -> Result<RunReport, String> {
    let mut builder = OntologyBuilder::new("d");
    builder.concept("A");
    let ontology = builder.build().map_err(|e| e.to_string())?;
    let mut env = Environment::new(QosModel::standard(), ontology, seed);
    let recorder = Arc::new(MemoryRecorder::new());
    env.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
    let rt = env
        .model()
        .property("ResponseTime")
        .ok_or("the standard model defines ResponseTime")?;
    for i in 0..6 {
        let desc = ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + i as f64);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal));
    }
    let shared = SharedEnvironment::new(env);

    let task = UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A")))
        .map_err(|e| e.to_string())?;
    let request = UserRequest::new(task).weight("Delay", 1.0);
    for round in 0..sessions {
        if round % 3 == 0 {
            let existing = shared.with(|e| {
                e.registry()
                    .iter()
                    .find(|(_, d)| d.name() == "burst")
                    .map(|(id, _)| id)
            });
            let delta = match existing {
                Some(id) => RegistryDelta::new().undeploy(id),
                None => RegistryDelta::new()
                    .deploy_faithful(ServiceDescription::new("burst", "d#A").with_qos(rt, 10.0)),
            };
            shared.apply_churn(delta);
        }
        let session = SessionRequest::new(request.clone()).for_client("stress");
        match shared.serve_session(&session).map_err(|e| e.to_string())? {
            ServeOutcome::Completed(_) => {}
            other => return Err(format!("session {round} did not complete: {other:?}")),
        }
    }
    Ok(shared.with(|e| e.run_report("stress")))
}

/// Writes a report as pretty JSON to `path` (`None` or `"-"` → stdout).
fn write_report(report: &RunReport, path: Option<&str>) -> Result<(), String> {
    write_text(&report.to_pretty_string(), path)
}

/// Writes `text` (plus a trailing newline) to `path` (`None` or `"-"` →
/// stdout).
fn write_text(text: &str, path: Option<&str>) -> Result<(), String> {
    match path {
        None | Some("-") => {
            println!("{text}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, format!("{text}\n")).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
    }
}

struct Args {
    services: String,
    classes: String,
    task: String,
    taxonomy: Option<String>,
    constraints: Vec<(String, f64, Unit)>,
    weights: Vec<(String, f64)>,
    seed: u64,
    verbose: bool,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        services: String::new(),
        classes: String::new(),
        task: String::new(),
        taxonomy: None,
        constraints: Vec::new(),
        weights: Vec::new(),
        seed: 42,
        verbose: false,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--services" => args.services = value("--services")?,
            "--classes" => args.classes = value("--classes")?,
            "--task" => args.task = value("--task")?,
            "--taxonomy" => args.taxonomy = Some(value("--taxonomy")?),
            "--constraint" => {
                let raw = value("--constraint")?;
                args.constraints.push(parse_constraint(&raw)?);
            }
            "--weight" => {
                let raw = value("--weight")?;
                let (name, w) = raw
                    .split_once('=')
                    .ok_or_else(|| format!("bad weight {raw:?} (expected NAME=W)"))?;
                let w: f64 = w.parse().map_err(|_| format!("bad weight value {w:?}"))?;
                args.weights.push((name.to_owned(), w));
            }
            "--seed" => {
                let raw = value("--seed")?;
                args.seed = raw.parse().map_err(|_| format!("bad seed {raw:?}"))?;
            }
            "--verbose" => args.verbose = true,
            "--report" => args.report = Some(value("--report")?),
            "--help" | "-h" => {
                println!(
                    "usage: qasom-cli --services FILE --classes FILE --task NAME\n\
                     \x20      [--taxonomy FILE] [--constraint NAME=VALUE[UNIT]]...\n\
                     \x20      [--weight NAME=W]... [--seed N] [--verbose] [--report FILE]\n\
                     \x20      qasom-cli report [--seed N] [--schema] [--out FILE]\n\
                     \x20      qasom-cli stress [--seed N] [--sessions N] [--out FILE]\n\
                     \x20      qasom-cli daemon-stress [--seed N] [--rounds N] [--clients N]\n\
                     \x20          [--queue N] [--quota N] [--batch N] [--out FILE]\n\
                     \x20      qasom-cli hotpath-stress [--seed N] [--services N] [--rounds N] [--out FILE]\n\
                     \x20      qasom-cli cluster-stress [--seed N] [--services N,N...]\n\
                     \x20          [--shards N,N...] [--sessions N] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    for (flag, v) in [
        ("--services", &args.services),
        ("--classes", &args.classes),
        ("--task", &args.task),
    ] {
        if v.is_empty() {
            return Err(format!("{flag} is required (try --help)"));
        }
    }
    Ok(args)
}

/// Parses `NAME=VALUE[UNIT]`, e.g. `Delay=1.5s` or `Availability=0.9`.
fn parse_constraint(raw: &str) -> Result<(String, f64, Unit), String> {
    let (name, rest) = raw
        .split_once('=')
        .ok_or_else(|| format!("bad constraint {raw:?} (expected NAME=VALUE[UNIT])"))?;
    let split = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .map_or(rest.len(), |(i, _)| i);
    let (value, unit) = rest.split_at(split);
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad constraint value in {raw:?}"))?;
    let unit: Unit = unit
        .parse()
        .map_err(|_| format!("unknown unit {unit:?} in {raw:?}"))?;
    Ok((name.to_owned(), value, unit))
}

/// Parses the taxonomy dialect into an [`Ontology`].
fn parse_taxonomy(input: &str) -> Result<Ontology, String> {
    let root = xml::parse(input).map_err(|e| e.to_string())?;
    if root.name != "ontology" {
        return Err(format!("expected <ontology>, found <{}>", root.name));
    }
    let ns = root.attr("ns").unwrap_or("domain").to_owned();
    let mut builder = OntologyBuilder::new(ns);
    fn walk(
        builder: &mut OntologyBuilder,
        el: &XmlElement,
        parent: Option<ConceptId>,
    ) -> Result<(), String> {
        for child in &el.children {
            if child.name != "concept" {
                return Err(format!("expected <concept>, found <{}>", child.name));
            }
            let name = child
                .attr("name")
                .ok_or("concept requires a name attribute")?;
            let id = match parent {
                Some(p) => builder.subconcept(name, p),
                None => builder.concept(name),
            };
            walk(builder, child, Some(id))?;
        }
        Ok(())
    }
    walk(&mut builder, &root, None)?;
    builder.build().map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let services_doc =
        std::fs::read_to_string(&args.services).map_err(|e| format!("{}: {e}", args.services))?;
    let classes_doc =
        std::fs::read_to_string(&args.classes).map_err(|e| format!("{}: {e}", args.classes))?;
    let ontology = match &args.taxonomy {
        Some(path) => {
            let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_taxonomy(&doc)?
        }
        None => OntologyBuilder::new("domain")
            .build()
            .map_err(|e| e.to_string())?,
    };

    let mut env = Environment::new(QosModel::standard(), ontology, args.seed);
    let recorder = Arc::new(MemoryRecorder::new());
    env.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
    let log = EventLog::new();
    env.subscribe(Arc::new(log.clone()));
    let ids = env
        .load_services(&services_doc)
        .map_err(|e| e.to_string())?;
    let classes = env
        .load_task_classes(&classes_doc)
        .map_err(|e| e.to_string())?;
    println!(
        "loaded {} service(s), {} task class(es)",
        ids.len(),
        classes
    );

    let task = env
        .task_repository()
        .task(&args.task)
        .ok_or_else(|| format!("task {:?} not found in the repository", args.task))?
        .clone();
    let mut request = UserRequest::new(task);
    for (name, value, unit) in &args.constraints {
        request = request
            .constraint(name.clone(), *value, *unit)
            .map_err(|e| e.to_string())?;
    }
    for (name, w) in &args.weights {
        request = request.weight(name.clone(), *w);
    }

    let composition = env.compose(&request).map_err(|e| e.to_string())?;
    println!(
        "composed {:?}: feasible={}, promised QoS {}",
        args.task,
        composition.outcome().feasible,
        env.model().format_vector(composition.promised_qos())
    );
    let names: HashMap<_, _> = env
        .registry()
        .iter()
        .map(|(id, d)| (id, d.name().to_owned()))
        .collect();
    for (i, activity) in composition.task().activities().enumerate() {
        let chosen = &composition.outcome().assignment[i];
        println!(
            "  {:<20} -> {}",
            activity.activity().name(),
            names.get(&chosen.id()).cloned().unwrap_or_default()
        );
    }

    let compose_section = ComposeSection {
        task: args.task.clone(),
        feasible: composition.outcome().feasible,
        levels_explored: composition.outcome().levels_explored as u64,
        utility: composition.outcome().utility,
        analyzer_warnings: composition.warnings().len() as u64,
    };

    let report = env.execute(composition).map_err(|e| e.to_string())?;
    println!(
        "executed via {:?}: {} invocation(s), {} substitution(s), {} behavioural adaptation(s)",
        report.final_task,
        report.invocations.len(),
        report.substitutions,
        report.behavioural_adaptations
    );
    println!(
        "delivered QoS: {}",
        env.model().format_vector(&report.delivered)
    );
    if args.verbose {
        println!("\nevent trace:");
        for event in log.events() {
            println!("  {event:?}");
        }
    }
    if let Some(path) = &args.report {
        let mut run_report = env.run_report(&args.task);
        run_report.compose = Some(compose_section);
        run_report.execution = Some(ExecutionSection {
            success: report.success,
            invocations: report.invocations.len() as u64,
            failures: report
                .invocations
                .iter()
                .filter(|r| r.qos.is_none())
                .count() as u64,
            substitutions: report.substitutions as u64,
            behavioural_adaptations: report.behavioural_adaptations as u64,
            violations: report.violations.len() as u64,
            delivered: report
                .delivered
                .iter()
                .map(|(p, v)| (env.model().def(p).name().to_owned(), v))
                .collect(),
        });
        write_report(&run_report, Some(path))?;
    }
    Ok(())
}
