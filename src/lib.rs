//! Facade crate for the QASOM reproduction workspace.
//!
//! This package hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual middleware lives in
//! the [`qasom`] crate and its substrates; this facade re-exports them so
//! examples and tests can use a single import root.

pub use qasom;
pub use qasom_adaptation as adaptation;
pub use qasom_netsim as netsim;
pub use qasom_ontology as ontology;
pub use qasom_qos as qos;
pub use qasom_registry as registry;
pub use qasom_selection as selection;
pub use qasom_task as task;
