//! Property-based tests of QASSA and its building blocks over random
//! workloads.

use proptest::prelude::*;
use qasom_qos::QosModel;
use qasom_selection::baseline::Baselines;
use qasom_selection::workload::{TaskShape, Tightness, WorkloadSpec};
use qasom_selection::{
    kmeans_1d, AggregationApproach, Aggregator, Qassa, SelectionProblem, ServiceCandidate,
};

fn model() -> QosModel {
    QosModel::standard()
}

fn arb_spec() -> impl Strategy<Value = (WorkloadSpec, u64)> {
    (
        1usize..5,  // activities
        1usize..30, // services per activity
        1usize..5,  // properties
        prop_oneof![
            Just(TaskShape::Sequence),
            Just(TaskShape::Mixed),
            Just(TaskShape::Full)
        ],
        prop_oneof![
            Just(Tightness::Unconstrained),
            Just(Tightness::AtMean),
            Just(Tightness::AtMeanPlusSigma)
        ],
        any::<u64>(),
    )
        .prop_map(|(a, s, p, shape, tightness, seed)| {
            (
                WorkloadSpec::evaluation_default()
                    .activities(a)
                    .services_per_activity(s)
                    .property_count(p)
                    .shape(shape)
                    .tightness(tightness),
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QASSA soundness: a composition flagged feasible satisfies every
    /// global constraint; utilities are always valid scores.
    #[test]
    fn qassa_is_sound((spec, seed) in arb_spec()) {
        let m = model();
        let w = spec.build(&m, seed);
        let problem = w.problem();
        let out = Qassa::new(&m).select(&problem).expect("well-formed");
        if out.feasible {
            prop_assert!(problem.constraints().satisfied_by(&out.aggregated));
        }
        prop_assert!((0.0..=1.0).contains(&out.utility), "utility {}", out.utility);
        prop_assert_eq!(out.assignment.len(), w.task().activity_count());
    }

    /// QASSA completeness (against the exact optimum) on exhaustive-
    /// tractable instances: whenever a feasible composition exists, QASSA
    /// finds one.
    #[test]
    fn qassa_is_complete_when_exhaustive_is_feasible(
        activities in 1usize..4,
        services in 1usize..8,
        seed in any::<u64>(),
    ) {
        let m = model();
        let w = WorkloadSpec::evaluation_default()
            .activities(activities)
            .services_per_activity(services)
            .tightness(Tightness::AtMean)
            .build(&m, seed);
        let problem = w.problem();
        let exact = Baselines::new(&m).exhaustive(&problem).expect("within cap");
        let ours = Qassa::new(&m).select(&problem).expect("well-formed");
        if exact.feasible {
            prop_assert!(ours.feasible, "QASSA missed a feasible composition");
            prop_assert!(ours.utility <= exact.utility + 1e-9);
        } else {
            prop_assert!(!ours.feasible, "QASSA claims feasibility the optimum lacks");
        }
    }

    /// The ranked alternates cover exactly the candidate sets.
    #[test]
    fn ranked_lists_are_complete((spec, seed) in arb_spec()) {
        let m = model();
        let w = spec.build(&m, seed);
        let problem = w.problem();
        let out = Qassa::new(&m).select(&problem).expect("well-formed");
        for (i, ranked) in out.ranked.iter().enumerate() {
            prop_assert_eq!(ranked.len(), problem.candidates()[i].len());
        }
    }

    /// Selection is deterministic.
    #[test]
    fn selection_is_deterministic((spec, seed) in arb_spec()) {
        let m = model();
        let w = spec.build(&m, seed);
        let problem = w.problem();
        let a = Qassa::new(&m).select(&problem).expect("ok");
        let b = Qassa::new(&m).select(&problem).expect("ok");
        prop_assert_eq!(a, b);
    }

    /// Aggregation-approach ordering: for every property, the pessimistic
    /// aggregate is never better than mean-value, which is never better
    /// than optimistic.
    #[test]
    fn aggregation_approaches_are_ordered((spec, seed) in arb_spec()) {
        let m = model();
        let w = spec.build(&m, seed);
        let problem = w.problem();
        let props = problem.properties();
        let assignment: Vec<qasom_qos::QosVector> = problem
            .candidates()
            .iter()
            .map(|c| c[0].qos().clone())
            .collect();
        let pess = Aggregator::new(&m, AggregationApproach::Pessimistic)
            .aggregate(w.task(), &assignment, &props);
        let mean = Aggregator::new(&m, AggregationApproach::MeanValue)
            .aggregate(w.task(), &assignment, &props);
        let opt = Aggregator::new(&m, AggregationApproach::Optimistic)
            .aggregate(w.task(), &assignment, &props);
        for &p in &props {
            let t = m.tendency(p);
            if let (Some(a), Some(b), Some(c)) = (pess.get(p), mean.get(p), opt.get(p)) {
                prop_assert!(t.at_least_as_good(b, a) || approx(a, b),
                    "mean {b} worse than pessimistic {a} for {p:?}");
                prop_assert!(t.at_least_as_good(c, b) || approx(b, c),
                    "optimistic {c} worse than mean {b} for {p:?}");
            }
        }
    }

    /// Degenerate value ranges — every candidate of an activity
    /// advertising identical QoS — must not poison normalisation:
    /// `min == max` per property used to divide by a zero range and
    /// leak NaN ranks. Selection must stay finite, sound and
    /// deterministic.
    #[test]
    fn qassa_survives_degenerate_qos_ranges((spec, seed) in arb_spec()) {
        let m = model();
        let w = spec.build(&m, seed);
        let base = w.problem();
        let constant: Vec<Vec<ServiceCandidate>> = base
            .candidates()
            .iter()
            .map(|cands| {
                let template = cands[0].qos().clone();
                cands
                    .iter()
                    .map(|c| ServiceCandidate::new(c.id(), template.clone()))
                    .collect()
            })
            .collect();
        let problem = SelectionProblem::new(w.task())
            .with_candidates(constant)
            .with_constraints(base.constraints().clone())
            .with_preferences(base.preferences().clone())
            .with_approach(base.approach());
        let out = Qassa::new(&m).select(&problem).expect("well-formed");
        prop_assert!(out.utility.is_finite(), "utility {}", out.utility);
        prop_assert!((0.0..=1.0).contains(&out.utility), "utility {}", out.utility);
        prop_assert_eq!(out.assignment.len(), w.task().activity_count());
        if out.feasible {
            prop_assert!(problem.constraints().satisfied_by(&out.aggregated));
        }
        let again = Qassa::new(&m).select(&problem).expect("well-formed");
        prop_assert_eq!(out, again);
    }

    /// Constant inputs (all values identical) used to starve K-means
    /// clusters and emit NaN centroids; they must collapse into
    /// non-empty bands with finite centroids.
    #[test]
    fn kmeans_handles_constant_values(value in 0.0f64..1e4, n in 1usize..100, k in 1usize..8) {
        let values = vec![value; n];
        let c = kmeans_1d(&values, k, 50);
        prop_assert_eq!(c.assignments().len(), n);
        for label in 0..c.k() {
            prop_assert!(c.assignments().contains(&label));
            prop_assert!(c.centroid(label).is_finite(), "centroid {label} not finite");
        }
    }

    /// K-means invariants on random value sets: total partition, labels
    /// in range, non-empty clusters.
    #[test]
    fn kmeans_partitions_its_input(values in prop::collection::vec(0.0f64..1e4, 1..200), k in 1usize..8) {
        let c = kmeans_1d(&values, k, 50);
        prop_assert_eq!(c.assignments().len(), values.len());
        for &a in c.assignments() {
            prop_assert!(a < c.k());
        }
        for label in 0..c.k() {
            prop_assert!(c.assignments().contains(&label));
        }
        // Centroids strictly increase.
        for i in 1..c.k() {
            prop_assert!(c.centroid(i - 1) <= c.centroid(i));
        }
    }
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}
