//! Observability guarantees of the unified `RunReport`:
//!
//! * **golden** — the builtin demo scenario is a pure function of its
//!   seed: two runs with the same seed serialise byte-identically;
//! * **schema** — the report's key-path set (arrays collapsed) matches
//!   the checked-in fixture, so accidental schema drift fails CI;
//! * **neutrality** — attaching a recorder never changes selection
//!   outcomes, protocol counts or execution results (property-tested
//!   across seeds).

use std::sync::Arc;

use proptest::prelude::*;
use qasom::demo::demo_run_report;
use qasom::{Environment, EnvironmentConfig, UserRequest};
use qasom_cluster::{ClusterConfig, ClusterSim};
use qasom_netsim::runtime::SyntheticService;
use qasom_obs::{key_paths, MemoryRecorder, NoopRecorder, Recorder};
use qasom_ontology::{Ontology, OntologyBuilder};
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_selection::distributed::{DistributedQassa, DistributedSetup};
use qasom_selection::workload::WorkloadSpec;
use qasom_task::{Activity, TaskNode, UserTask};

const SCHEMA_FIXTURE: &str = include_str!("fixtures/run_report_schema.txt");

#[test]
fn golden_same_seed_byte_identical() {
    let a = demo_run_report(1234).to_pretty_string();
    let b = demo_run_report(1234).to_pretty_string();
    assert_eq!(a, b, "RunReport must be a pure function of the seed");
}

#[test]
fn schema_matches_checked_in_fixture() {
    // Mirror `qasom-cli report`: the demo scenario plus the companion
    // clustered-registry section at the same seed (the CLI is what
    // regenerates the fixture).
    let mut report = demo_run_report(42);
    report.cluster = Some(
        ClusterSim::new(ClusterConfig::default())
            .run(42)
            .to_section(),
    );
    let mut actual = key_paths(&report.to_json()).join("\n");
    actual.push('\n');
    assert_eq!(
        actual, SCHEMA_FIXTURE,
        "RunReport schema drifted; regenerate tests/fixtures/run_report_schema.txt \
         if the change is intentional"
    );
}

#[test]
fn demo_report_sections_are_all_populated() {
    let report = demo_run_report(42);
    assert!(report.compose.is_some());
    assert!(report.execution.is_some());
    assert!(report.discovery.is_some());
    assert!(report.selection.is_some());
    assert!(report.distributed.is_some());
    assert!(!report.metrics.counters.is_empty());
    assert!(!report.metrics.spans.is_empty());
}

fn tiny_ontology() -> Ontology {
    let mut b = OntologyBuilder::new("d");
    b.concept("A");
    b.concept("B");
    b.build().unwrap()
}

fn seeded_env(seed: u64, recorder: Option<Arc<dyn Recorder>>) -> Environment {
    let mut builder = EnvironmentConfig::builder().seed(seed);
    if let Some(rec) = recorder {
        builder = builder.recorder(rec);
    }
    let mut env = builder.build(QosModel::standard(), tiny_ontology());
    let rt = env.model().property("ResponseTime").unwrap();
    let av = env.model().property("Availability").unwrap();
    for (name, function, ms) in [
        ("a-fast", "d#A", 40.0),
        ("a-slow", "d#A", 300.0),
        ("b-fast", "d#B", 60.0),
        ("b-slow", "d#B", 500.0),
    ] {
        let desc = ServiceDescription::new(name, function)
            .with_qos(rt, ms)
            .with_qos(av, 0.99);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal));
    }
    env
}

fn serve(seed: u64, recorder: Option<Arc<dyn Recorder>>) -> (Vec<usize>, usize, bool) {
    let mut env = seeded_env(seed, recorder);
    let task = UserTask::new(
        "t",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("first", "d#A")),
            TaskNode::activity(Activity::new("second", "d#B")),
        ]),
    )
    .unwrap();
    let request = UserRequest::new(task)
        .constraint("ResponseTime", 1.0, Unit::Seconds)
        .unwrap();
    let comp = env.compose(&request).unwrap();
    let assignment: Vec<usize> = comp
        .outcome()
        .assignment
        .iter()
        .map(|c| c.id().index())
        .collect();
    let report = env.execute(comp).unwrap();
    (assignment, report.invocations.len(), report.success)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A recorder is observation-only for the centralized pipeline:
    /// selection and execution outcomes are unchanged whether no
    /// recorder, a no-op recorder or a retaining recorder is attached.
    #[test]
    fn recorder_neutrality_for_compose_and_execute(seed in 0u64..1_000) {
        let plain = serve(seed, None);
        let noop = serve(seed, Some(Arc::new(NoopRecorder)));
        let memory = serve(seed, Some(Arc::new(MemoryRecorder::new())));
        prop_assert_eq!(&plain, &noop);
        prop_assert_eq!(&plain, &memory);
    }

    /// The same holds for the distributed protocol: message, retry and
    /// event counts are bit-equal with and without a recorder.
    #[test]
    fn recorder_neutrality_for_distributed_runs(seed in 0u64..500) {
        let model = QosModel::standard();
        let workload = WorkloadSpec::evaluation_default()
            .activities(3)
            .services_per_activity(8)
            .build(&model, seed);
        let setup = DistributedSetup { providers: 5, ..DistributedSetup::default() };
        let driver = DistributedQassa::new(&model);
        let plain = driver.run(&workload, &setup, seed).unwrap();
        let recorder = MemoryRecorder::new();
        let recorded = driver
            .run_recorded(&workload, &setup, seed, Some(&recorder))
            .unwrap();
        prop_assert_eq!(plain.messages, recorded.messages);
        prop_assert_eq!(plain.sim_events, recorded.sim_events);
        prop_assert_eq!(plain.sim_time_us, recorded.sim_time_us);
        prop_assert_eq!(plain.fault.retries_sent, recorded.fault.retries_sent);
        prop_assert_eq!(plain.fault.providers_heard, recorded.fault.providers_heard);
        prop_assert_eq!(plain.outcome.feasible, recorded.outcome.feasible);
        prop_assert_eq!(plain.net, recorded.net);
    }
}
