//! Integration tests of distributed QASSA over the network simulator.

use qasom_netsim::{DeviceProfile, LinkConfig};
use qasom_qos::QosModel;
use qasom_selection::distributed::{DistributedQassa, DistributedSetup};
use qasom_selection::workload::{Tightness, WorkloadSpec};
use qasom_selection::Qassa;

fn setup(providers: usize) -> DistributedSetup {
    DistributedSetup {
        providers,
        link: LinkConfig::new(5.0, 1.0),
        provider_profile: DeviceProfile::constrained(),
        coordinator_profile: DeviceProfile::constrained(),
        per_candidate_cost_us: 10,
        reply_timeout_ms: 5_000,
        ..DistributedSetup::default()
    }
}

#[test]
fn distributed_agrees_with_centralised_across_seeds() {
    let m = QosModel::standard();
    for seed in 0..5 {
        let w = WorkloadSpec::evaluation_default()
            .activities(3)
            .services_per_activity(24)
            .build(&m, seed);
        let central = Qassa::new(&m).select(&w.problem()).unwrap();
        let report = DistributedQassa::new(&m).run(&w, &setup(6), seed).unwrap();
        assert_eq!(
            report.outcome.feasible, central.feasible,
            "seed {seed}: distributed and centralised disagree on feasibility"
        );
        if central.feasible {
            // Same candidate universe and scoring: aggregates must both
            // satisfy the constraints.
            assert!(w.constraints().satisfied_by(&report.outcome.aggregated));
        }
    }
}

#[test]
fn local_phase_scales_down_with_fleet_size() {
    let m = QosModel::standard();
    let w = WorkloadSpec::evaluation_default()
        .activities(4)
        .services_per_activity(60)
        .build(&m, 3);
    let d = DistributedQassa::new(&m);
    let few = d.run(&w, &setup(2), 1).unwrap();
    let many = d.run(&w, &setup(20), 1).unwrap();
    assert!(
        many.local_phase < few.local_phase,
        "more providers should shorten the local phase: {} vs {}",
        many.local_phase,
        few.local_phase
    );
}

#[test]
fn message_budget_is_two_per_provider() {
    let m = QosModel::standard();
    let w = WorkloadSpec::evaluation_default()
        .activities(2)
        .services_per_activity(10)
        .build(&m, 4);
    for providers in [1usize, 3, 9] {
        let report = DistributedQassa::new(&m)
            .run(&w, &setup(providers), 4)
            .unwrap();
        assert_eq!(report.messages as usize, 2 * providers);
    }
}

#[test]
fn slow_devices_lengthen_the_local_phase() {
    let m = QosModel::standard();
    let w = WorkloadSpec::evaluation_default()
        .activities(3)
        .services_per_activity(40)
        .build(&m, 5);
    let d = DistributedQassa::new(&m);
    let mut fast = setup(5);
    fast.provider_profile = DeviceProfile::new(1.0);
    let mut slow = setup(5);
    slow.provider_profile = DeviceProfile::new(8.0);
    let t_fast = d.run(&w, &fast, 1).unwrap().local_phase;
    let t_slow = d.run(&w, &slow, 1).unwrap().local_phase;
    assert!(
        t_slow > t_fast,
        "8× slower CPUs must show: {t_slow} vs {t_fast}"
    );
}

#[test]
fn provider_churn_is_tolerated_via_timeout() {
    // A provider that never answers (partitioned) must not deadlock the
    // protocol: after the reply timeout the coordinator proceeds with the
    // digests it has, and round-robin sharding leaves every activity
    // covered by the remaining providers.
    let m = QosModel::standard();
    let w = WorkloadSpec::evaluation_default()
        .activities(2)
        .services_per_activity(12)
        .build(&m, 8);
    let mut lossy = setup(4);
    lossy.reply_timeout_ms = 200;
    // A very lossy network: some digests will be dropped, the timeout
    // must still produce an outcome from whatever arrived.
    lossy.link = LinkConfig::new(5.0, 1.0).with_loss(0.6);
    let report = DistributedQassa::new(&m).run(&w, &lossy, 8);
    // Either the surviving digests cover both activities (Ok) or an
    // activity lost all its candidates (structured error) — never a hang
    // or panic.
    match report {
        Ok(r) => assert_eq!(r.outcome.assignment.len(), 2),
        Err(e) => assert!(matches!(
            e,
            qasom_selection::SelectionError::NoCandidates { .. }
        )),
    }
}

#[test]
fn infeasible_workloads_stay_infeasible_distributed() {
    let m = QosModel::standard();
    let w = WorkloadSpec::evaluation_default()
        .activities(3)
        .services_per_activity(12)
        .tightness(Tightness::LooserBySigmas(-20.0))
        .build(&m, 6);
    let report = DistributedQassa::new(&m).run(&w, &setup(4), 6).unwrap();
    assert!(!report.outcome.feasible);
}
