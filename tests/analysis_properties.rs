//! Property-based tests of the static analyzer as a pipeline gate:
//! whatever request is thrown at the middleware, `analyze` and `compose`
//! must agree — an analyzer-accepted request flows through discovery and
//! selection without panicking or being `Rejected`, and every rejection
//! carries at least one error-level diagnostic.

use proptest::prelude::*;
use qasom::{ComposeError, Environment, UserRequest};
use qasom_analysis::{has_errors, Severity};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_selection::AggregationApproach;
use qasom_task::{Activity, LoopBound, TaskNode, UserTask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FUNCTIONS: usize = 3;

/// A populated environment: `FUNCTIONS` capability concepts with
/// `services` providers each, QoS drawn from `seed`.
fn environment(services: usize, seed: u64) -> Environment {
    let mut onto = OntologyBuilder::new("p");
    for f in 0..FUNCTIONS {
        onto.concept(&format!("F{f}"));
    }
    let mut env = Environment::new(
        QosModel::standard(),
        onto.build().expect("valid ontology"),
        seed,
    );
    let rt = env.model().property("ResponseTime").expect("standard");
    let av = env.model().property("Availability").expect("standard");
    let price = env.model().property("Price").expect("standard");
    let mut rng = StdRng::seed_from_u64(seed);
    for f in 0..FUNCTIONS {
        for s in 0..services {
            let desc = ServiceDescription::new(format!("svc-{f}-{s}"), &format!("p#F{f}"))
                .with_qos(rt, rng.gen_range(1.0..500.0))
                .with_qos(av, rng.gen_range(0.5..1.0))
                .with_qos(price, rng.gen_range(0.1..10.0));
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
    }
    env
}

/// A structurally valid task over the environment's function concepts.
fn build_task(shape: u8, activities: usize) -> UserTask {
    let act = |i: usize| {
        TaskNode::activity(Activity::new(
            format!("a{i}"),
            &format!("p#F{}", i % FUNCTIONS),
        ))
    };
    let root = match shape % 4 {
        0 => TaskNode::sequence((0..activities).map(act)),
        1 if activities >= 3 => TaskNode::sequence([
            act(0),
            TaskNode::parallel((1..activities - 1).map(act)),
            act(activities - 1),
        ]),
        2 if activities >= 2 => TaskNode::sequence(
            std::iter::once(TaskNode::choice([(0.5, act(0)), (0.5, act(1))]))
                .chain((2..activities).map(act)),
        ),
        3 => TaskNode::sequence(
            std::iter::once(TaskNode::repeat(act(0), LoopBound::new(2.0, 4)))
                .chain((1..activities).map(act)),
        ),
        _ => TaskNode::sequence((0..activities).map(act)),
    };
    UserTask::new("prop", root).expect("generated tasks are valid")
}

/// One random constraint. Mostly well-formed; occasionally (deliberately)
/// an unknown property or a unit of the wrong dimension, so the analyzer
/// has something to reject.
fn random_constraint(rng: &mut StdRng) -> (String, f64, Unit) {
    match rng.gen_range(0u32..8) {
        0 => ("NoSuchProperty".to_owned(), 1.0, Unit::Dimensionless),
        1 => ("ResponseTime".to_owned(), 2.0, Unit::Euro),
        2 => (
            "ResponseTime".to_owned(),
            -rng.gen_range(1.0..100.0),
            Unit::Milliseconds,
        ),
        3..=5 => (
            "ResponseTime".to_owned(),
            rng.gen_range(10.0..100_000.0),
            Unit::Milliseconds,
        ),
        6 => (
            "Availability".to_owned(),
            rng.gen_range(0.01..1.0),
            Unit::Ratio,
        ),
        _ => ("Price".to_owned(), rng.gen_range(0.5..200.0), Unit::Euro),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The gate property: `compose` never panics, returns `Rejected` iff
    /// the analyzer reports an error, and a composition only ever
    /// carries warning-level diagnostics.
    #[test]
    fn analyze_and_compose_agree(
        shape in 0u8..4,
        activities in 1usize..5,
        services in 1usize..6,
        n_constraints in 0usize..4,
        n_weights in 0usize..3,
        approach_idx in 0u8..3,
        seed in any::<u64>(),
    ) {
        let env = environment(services, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00dd_b01d_face_cafe);

        let mut request = UserRequest::new(build_task(shape, activities));
        for _ in 0..n_constraints {
            let (name, bound, unit) = random_constraint(&mut rng);
            request = request.constraint(name, bound, unit).expect("deferred validation");
        }
        for w in 0..n_weights {
            let name = ["ResponseTime", "Availability", "Price"][w];
            request = request.weight(name, rng.gen_range(1.0..10.0));
        }
        request = request.approach(match approach_idx {
            0 => AggregationApproach::Pessimistic,
            1 => AggregationApproach::Optimistic,
            _ => AggregationApproach::MeanValue,
        });

        let accepted = !has_errors(&env.analyze(&request));
        match env.compose(&request) {
            Ok(composition) => {
                prop_assert!(accepted, "composed despite analyzer errors");
                prop_assert!(
                    composition.warnings().iter().all(|d| d.severity != Severity::Error),
                    "error-level diagnostic on a successful composition"
                );
                prop_assert_eq!(
                    composition.outcome().assignment.len(),
                    composition.task().activity_count()
                );
            }
            Err(ComposeError::Rejected(errors)) => {
                prop_assert!(!accepted, "rejected an analyzer-accepted request");
                prop_assert!(
                    errors.iter().any(|d| d.severity == Severity::Error),
                    "rejection without an error diagnostic"
                );
            }
            // Downstream structural outcomes are legitimate for accepted
            // requests; what they must never be is a panic.
            Err(ComposeError::NoServiceFor { .. }) | Err(ComposeError::Selection(_)) => {}
            Err(ComposeError::Qos(e)) => {
                prop_assert!(
                    !accepted,
                    "resolution failed ({e}) on an analyzer-accepted request"
                );
            }
        }
    }
}
