//! Delta-QASSA re-selection against the full-recompose oracle.
//!
//! 256 seeded scenarios, each a random interleaving of provider churn
//! (arrivals, departures — including the chosen provider), monitored
//! QoS violations (degraded behaviours observed through execution) and
//! perceived-QoS perturbations (infrastructure overlays, which
//! disqualify cached levels and force the fallback). After every
//! sequence, [`qasom::Environment::recompose`] — which re-ranks only
//! the affected activities — must produce exactly the outcome of
//! `recompose_full`, the from-scratch oracle.

use qasom::{Environment, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, QosVector, Unit};
use qasom_registry::{ServiceDescription, ServiceId};
use qasom_task::{Activity, TaskNode, UserTask};

/// Minimal deterministic generator (splitmix-style) — the scenarios
/// must not depend on an external RNG crate or platform entropy.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(2_685_821_657_736_338_717).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() % 10_000) as f64 / 10_000.0
    }
}

struct Scenario {
    env: Environment,
    rt: qasom_qos::PropertyId,
    av: qasom_qos::PropertyId,
    live: Vec<ServiceId>,
    activities: usize,
}

impl Scenario {
    fn build(rng: &mut Lcg) -> (Self, UserRequest) {
        let activities = 2 + rng.below(3) as usize;
        let mut b = OntologyBuilder::new("dr");
        for i in 0..activities {
            b.concept(&format!("F{i}"));
        }
        let ontology = b.build().unwrap();
        let mut env = Environment::new(QosModel::standard(), ontology, rng.next());
        let rt = env.model().property("ResponseTime").unwrap();
        let av = env.model().property("Availability").unwrap();
        let mut live = Vec::new();
        for ci in 0..activities {
            for i in 0..(3 + rng.below(5) as usize) {
                let desc =
                    ServiceDescription::new(format!("s{ci}-{i}"), format!("dr#F{ci}").as_str())
                        .with_qos(rt, 20.0 + rng.below(400) as f64)
                        .with_qos(av, 0.90 + rng.unit() * 0.099);
                let nominal = desc.qos().clone();
                live.push(env.deploy(desc, SyntheticService::new(nominal)));
            }
        }
        let task = UserTask::new(
            "delta",
            TaskNode::sequence((0..activities).map(|i| {
                TaskNode::activity(Activity::new(format!("a{i}"), format!("dr#F{i}").as_str()))
            })),
        )
        .unwrap();
        let mut request = UserRequest::new(task)
            .weight("ResponseTime", 0.7)
            .weight("Availability", 0.3);
        if rng.below(4) != 0 {
            request = request
                .constraint("ResponseTime", 0.1 + rng.unit(), Unit::Seconds)
                .unwrap();
        }
        let scenario = Scenario {
            env,
            rt,
            av,
            live,
            activities,
        };
        (scenario, request)
    }

    /// One random churn/violation/perturbation step against `comp`.
    fn step(&mut self, rng: &mut Lcg, comp: &qasom::ExecutableComposition) {
        match rng.below(4) {
            0 => {
                // Arrival: a competitive newcomer on a random function.
                let ci = rng.below(self.activities as u64);
                let n = self.live.len();
                let desc =
                    ServiceDescription::new(format!("late{n}"), format!("dr#F{ci}").as_str())
                        .with_qos(self.rt, 10.0 + rng.below(100) as f64)
                        .with_qos(self.av, 0.95 + rng.unit() * 0.049);
                let nominal = desc.qos().clone();
                self.live
                    .push(self.env.deploy(desc, SyntheticService::new(nominal)));
            }
            1 => {
                // Departure of a random live provider — sometimes one the
                // composition currently binds.
                if !self.live.is_empty() {
                    let victim = self
                        .live
                        .swap_remove(rng.below(self.live.len() as u64) as usize);
                    self.env.undeploy(victim);
                }
            }
            2 => {
                // Violation: the bound provider of a random activity turns
                // slow; executing feeds the degradation to the monitor.
                let slot = rng.below(self.activities as u64) as usize;
                let chosen = comp.outcome().assignment[slot].id();
                if let Some(svc) = self.env.runtime_mut(chosen) {
                    let mut degraded = svc.nominal().clone();
                    degraded.set(self.rt, 2_000.0 + rng.below(3_000) as f64);
                    *svc = SyntheticService::new(degraded);
                    let _ = self.env.execute(comp.clone());
                }
            }
            _ => {
                // Perceived-QoS perturbation outside the event log: cached
                // levels are stale, delta must fall back to the oracle.
                self.env.set_infrastructure(rng.below(4), QosVector::new());
            }
        }
    }
}

/// The acceptance property of the delta path: for 256 seeded
/// churn/violation sequences, `recompose` (delta-first) and
/// `recompose_full` (from scratch) agree exactly — same assignment,
/// same ranked alternates, same utility and feasibility, or the same
/// error.
#[test]
fn delta_recompose_matches_full_oracle_over_256_seeded_scenarios() {
    for seed in 0..256u64 {
        let mut rng = Lcg::new(seed);
        let (mut scenario, request) = Scenario::build(&mut rng);
        let comp = scenario
            .env
            .compose(&request)
            .unwrap_or_else(|e| panic!("seed {seed}: compose failed: {e}"));
        for _ in 0..(1 + rng.below(5)) {
            scenario.step(&mut rng, &comp);
        }
        let delta = scenario.env.recompose(&comp);
        let full = scenario.env.recompose_full(&comp);
        match (delta, full) {
            (Ok(d), Ok(f)) => {
                assert_eq!(
                    d.outcome().assignment,
                    f.outcome().assignment,
                    "seed {seed}: assignments diverge"
                );
                assert_eq!(
                    d.outcome().ranked,
                    f.outcome().ranked,
                    "seed {seed}: ranked alternates diverge"
                );
                assert_eq!(
                    d.outcome().utility,
                    f.outcome().utility,
                    "seed {seed}: utilities diverge"
                );
                assert_eq!(
                    d.outcome().feasible,
                    f.outcome().feasible,
                    "seed {seed}: feasibility diverges"
                );
            }
            (Err(d), Err(f)) => {
                assert_eq!(
                    format!("{d}"),
                    format!("{f}"),
                    "seed {seed}: errors diverge"
                );
            }
            (d, f) => panic!("seed {seed}: delta {d:?} vs full {f:?}"),
        }
    }
}

/// Recompose results are themselves recomposable: chaining delta steps
/// (each against the previous delta result) stays on the oracle's
/// trajectory.
#[test]
fn chained_delta_recomposes_track_the_oracle() {
    for seed in 0..32u64 {
        let mut rng = Lcg::new(0xD0_0000 + seed);
        let (mut scenario, request) = Scenario::build(&mut rng);
        let mut comp = scenario
            .env
            .compose(&request)
            .unwrap_or_else(|e| panic!("seed {seed}: compose failed: {e}"));
        for round in 0..4 {
            scenario.step(&mut rng, &comp);
            let full = scenario.env.recompose_full(&comp);
            match (scenario.env.recompose(&comp), full) {
                (Ok(d), Ok(f)) => {
                    assert_eq!(
                        d.outcome().assignment,
                        f.outcome().assignment,
                        "seed {seed} round {round}"
                    );
                    comp = d;
                }
                (Err(d), Err(f)) => {
                    assert_eq!(format!("{d}"), format!("{f}"), "seed {seed} round {round}");
                    break;
                }
                (d, f) => panic!("seed {seed} round {round}: delta {d:?} vs full {f:?}"),
            }
        }
    }
}
