//! Robustness of the XML subset parser: arbitrary input must never panic,
//! and serialisation must round-trip arbitrary content.

use proptest::prelude::*;
use qasom_task::xml::{self, XmlElement};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,10}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Arbitrary printable content including XML-special characters —
    // leading/trailing whitespace is excluded because the parser trims
    // text content by design.
    "[ -~]{0,40}".prop_map(|s| s.trim().to_owned())
}

fn arb_element() -> impl Strategy<Value = XmlElement> {
    let leaf = (
        arb_name(),
        prop::collection::vec((arb_name(), arb_text()), 0..4),
        arb_text(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut el = XmlElement::new(name);
            // Attribute names must be unique for round-trip equality.
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    el.attributes.push((k, v));
                }
            }
            el.text = text;
            el
        });
    leaf.prop_recursive(3, 32, 4, |inner| {
        (
            arb_name(),
            prop::collection::vec((arb_name(), arb_text()), 0..3),
            prop::collection::vec(inner, 1..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut el = XmlElement::new(name);
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        el.attributes.push((k, v));
                    }
                }
                el.children = children;
                el
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever bytes arrive, the parser returns a structured result.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = xml::parse(&input);
    }

    /// Angle-bracket-heavy inputs (more likely to reach deep parser
    /// states) don't panic either.
    #[test]
    fn parser_never_panics_on_taggy_input(input in "[<>/a-z \"'=&;!?-]{0,120}") {
        let _ = xml::parse(&input);
    }

    /// Serialising and reparsing an arbitrary element tree is lossless,
    /// including XML-special characters in attributes and text.
    #[test]
    fn to_xml_round_trips_arbitrary_trees(el in arb_element()) {
        let text = el.to_xml();
        let reparsed = xml::parse(&text).expect("printer output parses");
        prop_assert_eq!(el, reparsed);
    }

    /// Mutating one byte of a valid document never panics the parser.
    #[test]
    fn single_byte_mutations_never_panic(el in arb_element(), pos in any::<usize>(), byte in any::<u8>()) {
        let mut text = el.to_xml().into_bytes();
        if !text.is_empty() {
            let i = pos % text.len();
            text[i] = byte;
        }
        let _ = xml::parse(&String::from_utf8_lossy(&text));
    }

    /// `escape` always produces text the parser accepts back verbatim.
    #[test]
    fn escape_is_parse_safe(s in "[ -~]{0,60}") {
        let s = s.trim().to_owned();
        let doc = format!("<a v=\"{}\">{}</a>", xml::escape(&s), xml::escape(&s));
        let parsed = xml::parse(&doc).expect("escaped content parses");
        prop_assert_eq!(parsed.attr("v").unwrap(), s.as_str());
        prop_assert_eq!(parsed.text.as_str(), s.as_str());
    }
}
