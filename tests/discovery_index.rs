//! Property tests of the registry's inverted capability index.
//!
//! Two invariants under arbitrary register/depart/re-register churn:
//!
//! * the incrementally-maintained index equals a from-scratch rebuild
//!   over the surviving services;
//! * indexed discovery returns exactly — same candidates, same order,
//!   same QoS — what the linear full-scan oracle returns, for black-box
//!   and white-box queries alike.

use std::sync::Arc;

use proptest::prelude::*;
use qasom_ontology::{Ontology, OntologyBuilder};
use qasom_qos::QosModel;
use qasom_registry::{
    Discovery, DiscoveryQuery, Operation, ServiceDescription, ServiceId, ServiceRegistry,
};
use qasom_task::Activity;

/// Function IRIs the churn script draws from: the whole taxonomy plus
/// IRIs unknown to the ontology (exercising the syntactic fallback
/// buckets of the index).
const FUNCTIONS: &[&str] = &[
    "d#Cap",
    "d#Cat0",
    "d#Cat1",
    "d#Cat2",
    "d#Cat0Leaf0",
    "d#Cat0Leaf1",
    "d#Cat1Leaf0",
    "d#Cat2Leaf1",
    "x#Unknown0",
    "x#Unknown1",
];

fn domain() -> Ontology {
    let mut b = OntologyBuilder::new("d");
    let root = b.concept("Cap");
    for i in 0..3 {
        let mid = b.subconcept(&format!("Cat{i}"), root);
        for j in 0..2 {
            b.subconcept(&format!("Cat{i}Leaf{j}"), mid);
        }
    }
    b.build().expect("tree taxonomy is acyclic")
}

/// One churn step. `operation == FUNCTIONS.len()` means "no operation";
/// departures pick among the currently live services by modulus (and are
/// no-ops on an empty registry).
#[derive(Debug, Clone, Copy)]
enum Op {
    Register { function: usize, operation: usize },
    Depart(usize),
}

fn arb_script() -> impl Strategy<Value = Vec<Op>> {
    let register =
        (0..FUNCTIONS.len(), 0..=FUNCTIONS.len()).prop_map(|(function, operation)| Op::Register {
            function,
            operation,
        });
    let depart = (0usize..64).prop_map(Op::Depart);
    // Registrations twice as likely as departures, so registries grow.
    prop::collection::vec(prop_oneof![2 => register, 1 => depart], 1..60)
}

fn apply(script: &[Op], registry: &mut ServiceRegistry) {
    let mut live: Vec<ServiceId> = Vec::new();
    for (n, op) in script.iter().enumerate() {
        match *op {
            Op::Register {
                function,
                operation,
            } => {
                let mut desc = ServiceDescription::new(format!("s{n}"), FUNCTIONS[function]);
                if operation < FUNCTIONS.len() {
                    desc = desc.with_operation(Operation::new("op", FUNCTIONS[operation]));
                }
                live.push(registry.register(desc));
            }
            Op::Depart(k) => {
                if !live.is_empty() {
                    let id = live.remove(k % live.len());
                    registry.deregister(id);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After any churn script the incremental index equals a rebuild.
    #[test]
    fn churned_index_equals_rebuild(script in arb_script()) {
        let onto = Arc::new(domain());
        let mut registry = ServiceRegistry::with_ontology(Arc::clone(&onto));
        apply(&script, &mut registry);
        prop_assert!(registry.index_matches_rebuild());
    }

    /// Indexed discovery is byte-identical to the linear-scan oracle on
    /// every function in the pool, black-box and white-box.
    #[test]
    fn indexed_discovery_matches_linear_oracle(script in arb_script()) {
        let onto = Arc::new(domain());
        let model = QosModel::standard();
        let mut registry = ServiceRegistry::with_ontology(Arc::clone(&onto));
        apply(&script, &mut registry);

        let discovery = Discovery::new(&onto, &model);
        for function in FUNCTIONS {
            let activity = Activity::new("a", function);
            for white_box in [false, true] {
                let query = DiscoveryQuery::new(&activity).white_box(white_box);
                let indexed = discovery.discover(&registry, &query);
                let linear = discovery.discover(&registry, &query.linear_scan(true));
                prop_assert_eq!(&indexed, &linear, "function {}", function);
            }
        }
    }
}

/// Deterministic regression: register → depart → re-register the same
/// description keeps index and discovery consistent.
#[test]
fn reregistration_after_departure_is_consistent() {
    let onto = Arc::new(domain());
    let model = QosModel::standard();
    let mut registry = ServiceRegistry::with_ontology(Arc::clone(&onto));

    let desc = ServiceDescription::new("till", "d#Cat0Leaf0")
        .with_operation(Operation::new("op", "x#Unknown0"));
    let first = registry.register(desc.clone());
    registry.deregister(first);
    let second = registry.register(desc);
    assert_ne!(first, second, "service ids are never reused");
    assert!(registry.index_matches_rebuild());

    let discovery = Discovery::new(&onto, &model);
    let activity = Activity::new("a", "d#Cat0");
    let query = DiscoveryQuery::new(&activity);
    let found = discovery.discover(&registry, &query);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].service, second);
    assert_eq!(
        found,
        discovery.discover(&registry, &query.linear_scan(true))
    );
}
