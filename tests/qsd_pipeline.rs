//! The specification pipeline end to end: an environment whose services,
//! task classes and user task are *all* loaded from XML documents — the
//! way the original platform was provisioned.

use qasom::{Environment, UserRequest};
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_task::bpel;

const SERVICES: &str = r#"
<services>
  <service name="kiosk" provider="centre" function="shop#Browse">
    <qos property="ResponseTime" value="60" unit="ms"/>
    <qos property="Availability" value="99" unit="%"/>
    <qos property="Price" value="0" unit="EUR"/>
  </service>
  <service name="fnac" provider="fnac" function="shop#BuyBook">
    <qos property="ResponseTime" value="0.15" unit="s"/>
    <qos property="Availability" value="0.98"/>
    <qos property="Price" value="1800" unit="c"/>
  </service>
  <service name="till" provider="centre" function="shop#PayByCard">
    <qos property="ResponseTime" value="90" unit="ms"/>
    <qos property="Availability" value="0.99"/>
    <qos property="Price" value="0"/>
  </service>
</services>"#;

const CLASSES: &str = r#"
<taskclasses>
  <taskclass name="shopping">
    <process name="shop-v1">
      <sequence>
        <invoke name="browse" function="shop#Browse"/>
        <invoke name="book" function="shop#BuyBook"/>
        <invoke name="pay" function="shop#Pay"/>
      </sequence>
    </process>
    <process name="shop-v2">
      <sequence>
        <invoke name="browse2" function="shop#Browse"/>
        <invoke name="book2" function="shop#BuyBook"/>
      </sequence>
    </process>
  </taskclass>
</taskclasses>"#;

fn environment() -> Environment {
    let mut b = OntologyBuilder::new("shop");
    b.concept("Browse");
    b.concept("BuyBook");
    let pay = b.concept("Pay");
    b.subconcept("PayByCard", pay);
    let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 77);
    env.load_services(SERVICES).expect("valid QSD");
    env.load_task_classes(CLASSES).expect("valid task classes");
    env
}

#[test]
fn full_xml_provisioned_pipeline() {
    let mut env = environment();
    // The user task comes from the repository (looked up by name).
    let task = env
        .task_repository()
        .task("shop-v1")
        .expect("provisioned")
        .clone();
    let request = UserRequest::new(task)
        .constraint("Delay", 1.0, Unit::Seconds)
        .unwrap()
        .constraint("TotalPrice", 30.0, Unit::Euro)
        .unwrap();
    let comp = env.compose(&request).unwrap();
    assert!(comp.outcome().feasible);
    let rt = env.model().property("ResponseTime").unwrap();
    // 60 + 150 + 90 ms, all loaded through three different unit spellings.
    assert_eq!(comp.promised_qos().get(rt), Some(300.0));
    let price = env.model().property("Price").unwrap();
    assert_eq!(comp.promised_qos().get(price), Some(18.0));

    let report = env.execute(comp).unwrap();
    assert!(report.success);
    assert_eq!(report.invocations.len(), 3);
}

#[test]
fn provisioned_task_classes_support_adaptation() {
    let mut env = environment();
    let task = env.task_repository().task("shop-v1").unwrap().clone();
    // Remove every payment service: v1 becomes unservable at "pay" and
    // the class's v2 (no payment step) must take over.
    let pay_ids: Vec<_> = env
        .registry()
        .iter()
        .filter(|(_, d)| d.function().local_name() == "PayByCard")
        .map(|(id, _)| id)
        .collect();
    for id in pay_ids {
        env.undeploy(id);
    }
    let request = UserRequest::new(task);
    let comp = env.compose(&request);
    // Pay has no candidate at all → composition fails; the execution
    // engine can only adapt when composition succeeded first. Compose v2
    // directly instead, as the middleware's task lookup would.
    assert!(comp.is_err());
    let v2 = env.task_repository().task("shop-v2").unwrap().clone();
    let comp = env.compose(&UserRequest::new(v2)).unwrap();
    let report = env.execute(comp).unwrap();
    assert!(report.success);
}

#[test]
fn bpel_documents_round_trip_through_the_repository() {
    let env = environment();
    let v1 = env.task_repository().task("shop-v1").unwrap();
    let printed = bpel::print(v1);
    let reparsed = bpel::parse(&printed).unwrap();
    assert_eq!(*v1, reparsed);
}
