//! Concurrent multi-session use of a shared middleware instance, with
//! churn injected from another thread.

use std::thread;

use qasom::{
    Environment, RegistryDelta, ServeOutcome, SessionRequest, SharedEnvironment, UserRequest,
};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

fn shared_market(providers: usize) -> SharedEnvironment {
    let mut b = OntologyBuilder::new("d");
    b.concept("A");
    let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 21);
    let rt = env.model().property("ResponseTime").unwrap();
    for i in 0..providers {
        let desc = ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + i as f64);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal).with_noise(0.02));
    }
    SharedEnvironment::new(env)
}

fn request() -> UserRequest {
    UserRequest::new(UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap())
        .weight("Delay", 1.0)
}

#[test]
fn many_sessions_with_concurrent_churn() {
    let shared = shared_market(12);

    // A churn thread keeps removing and re-adding providers (one typed
    // delta per round) while eight session threads serve requests.
    let churner = {
        let s = shared.clone();
        thread::spawn(move || {
            let rt = s.with(|e| e.model().property("ResponseTime").unwrap());
            for round in 0..20 {
                let victim = s.with(|e| e.registry().iter().map(|(id, _)| id).nth(round % 3));
                let mut delta = RegistryDelta::new();
                if let Some(id) = victim {
                    delta = delta.undeploy(id);
                }
                delta = delta.deploy_faithful(
                    ServiceDescription::new(format!("fresh{round}"), "d#A").with_qos(rt, 45.0),
                );
                let receipt = s.apply_churn(delta);
                assert_eq!(receipt.deployed.len(), 1);
            }
        })
    };

    let sessions: Vec<_> = (0..8)
        .map(|_| {
            let s = shared.clone();
            thread::spawn(move || {
                let mut successes = 0;
                for _ in 0..10 {
                    let session = SessionRequest::new(request()).for_client("shared-test");
                    if let Ok(ServeOutcome::Completed(report)) = s.serve_session(&session) {
                        assert!(report.success);
                        successes += 1;
                    }
                }
                successes
            })
        })
        .collect();

    churner.join().unwrap();
    let total: usize = sessions.into_iter().map(|h| h.join().unwrap()).sum();
    // serve_session() composes under the read lock and executes under
    // the write lock; churn slipping between the phases is absorbed by
    // dynamic binding, so every session request must still complete.
    assert_eq!(total, 80);

    // SLA records exist for every provider that actually served.
    let tracked = shared.with(|e| {
        e.registry()
            .iter()
            .filter(|(id, _)| e.sla(*id).is_some())
            .count()
    });
    assert!(tracked >= 1);
}
