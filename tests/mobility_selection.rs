//! Mobility → end-to-end QoS → selection: the same request must select
//! different providers as the user moves through the environment.

use qasom::{Environment, UserRequest};
use qasom_netsim::mobility::{Position, RadioProfile, RandomWaypoint};
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, QosVector};
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

fn streaming_env() -> Environment {
    let mut b = OntologyBuilder::new("camp");
    b.concept("Streaming");
    let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 3);
    let rt = env.model().property("ResponseTime").unwrap();
    // Identically advertised peers on hosts 1 and 2.
    for host in [1u64, 2] {
        let desc = ServiceDescription::new(format!("peer-{host}"), "camp#Streaming")
            .with_qos(rt, 100.0)
            .with_host(host);
        let nominal = desc.qos().clone();
        env.deploy(desc, qasom_netsim::runtime::SyntheticService::new(nominal));
    }
    env
}

fn request() -> UserRequest {
    UserRequest::new(
        UserTask::new(
            "listen",
            TaskNode::activity(Activity::new("stream", "camp#Streaming")),
        )
        .unwrap(),
    )
    // Selection needs a QoS axis to rank on: the user cares about delay.
    .weight("Delay", 1.0)
}

fn selected_host(env: &mut Environment) -> u64 {
    let comp = env.compose(&request()).unwrap();
    let id = comp.outcome().assignment[0].id();
    env.registry().get(id).unwrap().host().unwrap()
}

#[test]
fn selection_prefers_the_nearer_host() {
    let mut env = streaming_env();
    let radio = RadioProfile::wifi_adhoc();
    let model = env.model().clone();
    // User close to host 1, far from host 2.
    env.set_infrastructure(1, radio.infra_qos(&model, 10.0));
    env.set_infrastructure(2, radio.infra_qos(&model, 80.0));
    assert_eq!(selected_host(&mut env), 1);

    // The user walks: distances swap, so does the selection.
    env.set_infrastructure(1, radio.infra_qos(&model, 80.0));
    env.set_infrastructure(2, radio.infra_qos(&model, 10.0));
    assert_eq!(selected_host(&mut env), 2);
}

#[test]
fn out_of_range_hosts_are_perceived_as_unusable() {
    let mut env = streaming_env();
    let radio = RadioProfile::wifi_adhoc();
    let model = env.model().clone();
    let rt = model.property("ResponseTime").unwrap();
    env.set_infrastructure(1, radio.infra_qos(&model, 10.0));
    env.set_infrastructure(2, radio.infra_qos(&model, 500.0)); // out of range
    let found = env.discover(&Activity::new("stream", "camp#Streaming"));
    let host2 = found
        .iter()
        .find(|c| env.registry().get(c.id()).unwrap().host() == Some(2))
        .unwrap();
    // Infinite network latency makes the perceived response time infinite.
    assert_eq!(host2.qos().get(rt), Some(f64::INFINITY));
    assert_eq!(selected_host(&mut env), 1);
}

#[test]
fn waypoint_walk_changes_selection_over_time() {
    let mut env = streaming_env();
    let radio = RadioProfile::wifi_adhoc();
    let model = env.model().clone();
    // Node 0 = user, nodes 1 and 2 = fixed peers at opposite corners.
    let mut mob = RandomWaypoint::new(3, (100.0, 100.0), (2.0, 4.0), 11);
    mob.set_position(1, Position::new(5.0, 5.0));
    mob.set_position(2, Position::new(95.0, 95.0));

    let mut hosts_seen = std::collections::HashSet::new();
    for _ in 0..30 {
        for host in [1u64, 2] {
            let d = mob.distance(0, host as usize);
            env.set_infrastructure(host, radio.infra_qos(&model, d));
        }
        hosts_seen.insert(selected_host(&mut env));
        mob.step(20.0);
    }
    assert_eq!(
        hosts_seen.len(),
        2,
        "a long random walk across the area must visit both peers' cells"
    );
    let _ = QosVector::new();
}
