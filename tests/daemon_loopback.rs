//! Integration tests for the `qasomd` broker over the deterministic
//! loopback transport: batched admission pays discovery once per batch,
//! overload sheds typed `Busy` replies in a deterministic order, and
//! the scripted stress workload is byte-identical per seed.

use std::sync::Arc;

use qasom::{Environment, SharedEnvironment, UserRequest};
use qasom_daemon::{
    AdmissionConfig, BrokerConfig, ClientEvent, ClientOutcome, LoopbackClient, LoopbackDaemon,
};
use qasom_netsim::runtime::SyntheticService;
use qasom_obs::{keys, MemoryRecorder};
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

/// One concept, six providers, recorder installed.
fn market(seed: u64) -> SharedEnvironment {
    let mut b = OntologyBuilder::new("d");
    b.concept("A");
    let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), seed);
    env.set_recorder(Arc::new(MemoryRecorder::new()));
    let rt = env.model().property("ResponseTime").unwrap();
    for i in 0..6 {
        let desc = ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + i as f64);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal));
    }
    SharedEnvironment::new(env)
}

fn request() -> UserRequest {
    UserRequest::new(UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap())
        .weight("Delay", 1.0)
}

fn counter(shared: &SharedEnvironment, key: &str) -> u64 {
    shared
        .with(|e| e.recorder().and_then(|r| r.snapshot()))
        .map_or(0, |snap| snap.counter(key))
}

fn connect_ready(daemon: &mut LoopbackDaemon, n: usize) -> Vec<LoopbackClient> {
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let c = daemon.connect();
            daemon.send_hello(c, &format!("client-{i}")).unwrap();
            c
        })
        .collect();
    daemon.pump();
    for c in &clients {
        let events = daemon.drain_events(*c).unwrap();
        assert!(matches!(events[..], [ClientEvent::HelloAck(_)]));
    }
    clients
}

/// (a) A batch of same-signature sessions from distinct clients does
/// exactly ONE discovery pass — the tentpole's amortisation claim,
/// proven through the `discovery.*` counters.
#[test]
fn a_shared_activity_batch_runs_one_discovery_pass() {
    const N: usize = 6;
    let shared = market(7);
    let mut daemon = LoopbackDaemon::new(
        shared.clone(),
        BrokerConfig {
            admission: AdmissionConfig {
                queue_capacity: 64,
                client_quota: 8,
                batch_max: N,
            },
        },
    );
    let clients = connect_ready(&mut daemon, N);
    let before =
        counter(&shared, keys::DISCOVERY_INDEXED) + counter(&shared, keys::DISCOVERY_LINEAR);

    for (i, c) in clients.iter().enumerate() {
        daemon.send_compose(*c, i as u64 + 1, &request()).unwrap();
    }
    daemon.pump();

    for (i, c) in clients.iter().enumerate() {
        let events = daemon.drain_events(*c).unwrap();
        assert!(
            matches!(
                &events[..],
                [ClientEvent::Reply {
                    corr_id,
                    outcome: ClientOutcome::Completed(summary),
                }] if *corr_id == i as u64 + 1 && summary.success
            ),
            "client {i} events: {events:?}"
        );
    }

    let after =
        counter(&shared, keys::DISCOVERY_INDEXED) + counter(&shared, keys::DISCOVERY_LINEAR);
    assert_eq!(after - before, 1, "one discovery pass for {N} sessions");
    assert_eq!(counter(&shared, keys::DAEMON_BATCHES), 1);
    assert_eq!(counter(&shared, keys::DAEMON_BATCHED_SESSIONS), N as u64);
    assert_eq!(counter(&shared, keys::DAEMON_COMPLETED), N as u64);
    // Each batched session still executed individually.
    assert_eq!(counter(&shared, keys::SERVING_WRITE_LOCKS), N as u64);
}

/// (b) Submissions past queue capacity are shed with typed `Busy`
/// replies — no panic, no unbounded queue — and the Busy correlation
/// ids are exactly the tail of the submission script, in order.
#[test]
fn over_capacity_sessions_shed_busy_in_submission_order() {
    const CAPACITY: usize = 3;
    let shared = market(9);
    let mut daemon = LoopbackDaemon::new(
        shared.clone(),
        BrokerConfig {
            admission: AdmissionConfig {
                queue_capacity: CAPACITY,
                client_quota: 8,
                batch_max: 8,
            },
        },
    );
    let clients = connect_ready(&mut daemon, 1);
    let c = clients[0];

    for corr in 1..=7u64 {
        daemon.send_compose(c, corr, &request()).unwrap();
    }
    daemon.pump();

    let events = daemon.drain_events(c).unwrap();
    let mut completed = Vec::new();
    let mut busy = Vec::new();
    for event in events {
        match event {
            ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Completed(_),
            } => completed.push(corr_id),
            ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Busy { retry_after_ticks },
            } => {
                assert!(retry_after_ticks >= 1);
                busy.push(corr_id);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    // First CAPACITY submissions admitted (and served), the rest shed
    // as Busy in exactly the order they were submitted.
    assert_eq!(completed, vec![1, 2, 3]);
    assert_eq!(busy, vec![4, 5, 6, 7]);
    assert_eq!(counter(&shared, keys::DAEMON_SHED), 4);
    assert_eq!(counter(&shared, keys::DAEMON_ADMITTED), CAPACITY as u64);

    // Re-running the same script against a fresh daemon sheds the same
    // correlation ids: the Busy ordering is deterministic.
    let shared2 = market(9);
    let mut daemon2 = LoopbackDaemon::new(
        shared2,
        BrokerConfig {
            admission: AdmissionConfig {
                queue_capacity: CAPACITY,
                client_quota: 8,
                batch_max: 8,
            },
        },
    );
    let c2 = connect_ready(&mut daemon2, 1)[0];
    for corr in 1..=7u64 {
        daemon2.send_compose(c2, corr, &request()).unwrap();
    }
    daemon2.pump();
    let busy2: Vec<u64> = daemon2
        .drain_events(c2)
        .unwrap()
        .into_iter()
        .filter_map(|e| match e {
            ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Busy { .. },
            } => Some(corr_id),
            _ => None,
        })
        .collect();
    assert_eq!(busy2, busy);
}

/// The `Busy` retry hint at the exact-capacity boundary: with the queue
/// full at `queue_capacity == 4` and `batch_max == 2`, the backlog plus
/// the retrying session itself is ceil(5/2) = 3 batch drains, plus the
/// tick that re-admits it — 4 ticks. The pre-fix rounding
/// (`ceil(len/batch)`) said 3 whenever the queue divided evenly into
/// batches, one tick short of when capacity actually frees up for the
/// retrier.
#[test]
fn busy_hint_covers_the_retrier_at_the_capacity_boundary() {
    let shared = market(11);
    let mut daemon = LoopbackDaemon::new(
        shared.clone(),
        BrokerConfig {
            admission: AdmissionConfig {
                queue_capacity: 4,
                client_quota: 8,
                batch_max: 2,
            },
        },
    );
    let c = connect_ready(&mut daemon, 1)[0];
    for corr in 1..=5u64 {
        daemon.send_compose(c, corr, &request()).unwrap();
    }
    daemon.pump();

    let events = daemon.drain_events(c).unwrap();
    let hints: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match e {
            ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Busy { retry_after_ticks },
            } => Some((*corr_id, *retry_after_ticks)),
            _ => None,
        })
        .collect();
    assert_eq!(hints, vec![(5, 4)], "events: {events:?}");
    assert_eq!(counter(&shared, keys::DAEMON_SHED), 1);
}

/// A client exceeding its per-identity quota is shed even while the
/// queue has room; other clients are unaffected.
#[test]
fn quota_sheds_only_the_greedy_client() {
    let shared = market(13);
    let mut daemon = LoopbackDaemon::new(
        shared.clone(),
        BrokerConfig {
            admission: AdmissionConfig {
                queue_capacity: 64,
                client_quota: 2,
                batch_max: 8,
            },
        },
    );
    let clients = connect_ready(&mut daemon, 2);

    // Client 0 submits four (two over quota); client 1 submits one.
    for corr in 1..=4u64 {
        daemon.send_compose(clients[0], corr, &request()).unwrap();
    }
    daemon.send_compose(clients[1], 9, &request()).unwrap();
    daemon.pump();

    let greedy = daemon.drain_events(clients[0]).unwrap();
    let busy: Vec<u64> = greedy
        .iter()
        .filter_map(|e| match e {
            ClientEvent::Reply {
                corr_id,
                outcome: ClientOutcome::Busy { .. },
            } => Some(*corr_id),
            _ => None,
        })
        .collect();
    assert_eq!(busy, vec![3, 4]);
    let polite = daemon.drain_events(clients[1]).unwrap();
    assert!(matches!(
        polite[..],
        [ClientEvent::Reply {
            corr_id: 9,
            outcome: ClientOutcome::Completed(_),
        }]
    ));
    assert_eq!(counter(&shared, keys::DAEMON_QUOTA_DENIALS), 2);
    assert_eq!(counter(&shared, keys::DAEMON_SHED), 0);
}

/// (c) The scripted daemon stress workload is byte-identical across
/// repeats of the same configuration — the determinism contract the CI
/// `cmp` check relies on — and differs across seeds.
#[test]
fn daemon_stress_reports_are_byte_identical_per_seed() {
    let config = qasom_daemon::StressConfig::default();
    let a = qasom_daemon::stress_report(&config)
        .unwrap()
        .to_pretty_string();
    let b = qasom_daemon::stress_report(&config)
        .unwrap()
        .to_pretty_string();
    assert_eq!(a, b);
    assert!(a.contains("\"daemon\": {"), "report: {a}");

    let other = qasom_daemon::stress_report(&qasom_daemon::StressConfig {
        seed: 1729,
        ..config
    })
    .unwrap()
    .to_pretty_string();
    assert_ne!(a, other, "the seed must reach the synthetic substrate");
}
