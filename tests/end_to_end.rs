//! End-to-end scenarios through the whole middleware stack:
//! request → discovery → QASSA → execution → monitoring → adaptation.

use std::sync::Arc;

use qasom::{Environment, EventLog, ExecutionError, MiddlewareEvent, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::{Ontology, OntologyBuilder};
use qasom_qos::{QosModel, Unit};
use qasom_registry::{ServiceDescription, ServiceId};
use qasom_task::{bpel, Activity, TaskClass, TaskNode, UserTask};

fn shop_ontology() -> Ontology {
    let mut b = OntologyBuilder::new("shop");
    b.concept("Browse");
    b.concept("BuyBook");
    b.concept("BuyCd");
    let pay = b.concept("Pay");
    b.subconcept("PayByCard", pay);
    b.subconcept("PayCash", pay);
    b.build().unwrap()
}

struct Deployer {
    rt: qasom_qos::PropertyId,
    av: qasom_qos::PropertyId,
    price: qasom_qos::PropertyId,
}

impl Deployer {
    fn new(env: &Environment) -> Self {
        Deployer {
            rt: env.model().property("ResponseTime").unwrap(),
            av: env.model().property("Availability").unwrap(),
            price: env.model().property("Price").unwrap(),
        }
    }

    fn deploy(
        &self,
        env: &mut Environment,
        name: &str,
        function: &str,
        rt_ms: f64,
        cost: f64,
    ) -> ServiceId {
        let desc = ServiceDescription::new(name, function)
            .with_qos(self.rt, rt_ms)
            .with_qos(self.av, 0.99)
            .with_qos(self.price, cost);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal))
    }

    fn deploy_crashing(
        &self,
        env: &mut Environment,
        name: &str,
        function: &str,
        rt_ms: f64,
    ) -> ServiceId {
        let desc = ServiceDescription::new(name, function)
            .with_qos(self.rt, rt_ms)
            .with_qos(self.av, 0.99)
            .with_qos(self.price, 1.0);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal).with_crash_after(0))
    }
}

fn shopping_task() -> UserTask {
    bpel::parse(
        r#"<process name="shopping">
             <sequence>
               <invoke name="browse" function="shop#Browse"/>
               <flow>
                 <invoke name="book" function="shop#BuyBook"/>
                 <invoke name="cd" function="shop#BuyCd"/>
               </flow>
               <invoke name="pay" function="shop#Pay"/>
             </sequence>
           </process>"#,
    )
    .unwrap()
}

fn full_environment(seed: u64) -> (Environment, Deployer) {
    let mut env = Environment::new(QosModel::standard(), shop_ontology(), seed);
    let d = Deployer::new(&env);
    d.deploy(&mut env, "kiosk", "shop#Browse", 60.0, 0.0);
    d.deploy(&mut env, "kiosk2", "shop#Browse", 200.0, 0.0);
    d.deploy(&mut env, "fnac", "shop#BuyBook", 150.0, 18.0);
    d.deploy(&mut env, "used-books", "shop#BuyBook", 300.0, 9.0);
    d.deploy(&mut env, "music", "shop#BuyCd", 140.0, 15.0);
    d.deploy(&mut env, "till-card", "shop#PayByCard", 90.0, 0.0);
    d.deploy(&mut env, "till-cash", "shop#PayCash", 220.0, 0.0);
    (env, d)
}

fn shopping_request() -> UserRequest {
    UserRequest::new(shopping_task())
        .constraint("Delay", 2.0, Unit::Seconds)
        .unwrap()
        .constraint("TotalPrice", 60.0, Unit::Euro)
        .unwrap()
        .weight("Delay", 1.0)
        .weight("TotalPrice", 1.0)
}

#[test]
fn shopping_happy_path() {
    let (mut env, _) = full_environment(1);
    let comp = env.compose(&shopping_request()).unwrap();
    assert!(comp.outcome().feasible);

    let report = env.execute(comp).unwrap();
    assert!(report.success);
    assert_eq!(report.invocations.len(), 4);
    assert_eq!(report.substitutions, 0);
    assert_eq!(report.behavioural_adaptations, 0);
    assert!(report.violations.is_empty());
}

#[test]
fn user_vocabulary_constraints_are_enforced() {
    let (env, _) = full_environment(2);
    // A delay bound of 250 ms is impossible (browse+buy+pay ≥ 290 ms
    // sequential minimum) — composition must be flagged infeasible.
    let request = UserRequest::new(shopping_task())
        .constraint("Delay", 0.25, Unit::Seconds)
        .unwrap();
    let comp = env.compose(&request).unwrap();
    assert!(!comp.outcome().feasible);
}

#[test]
fn semantic_discovery_binds_specialised_payment() {
    let (env, _) = full_environment(3);
    let comp = env.compose(&shopping_request()).unwrap();
    // The task asks for shop#Pay; both tills are subconcepts, so one of
    // them must be bound.
    let pay_binding = comp.outcome().assignment[3].id();
    let name = env.registry().get(pay_binding).unwrap().name().to_owned();
    assert!(name.starts_with("till-"), "bound {name}");
}

#[test]
fn failed_payment_is_substituted_by_the_other_till() {
    let mut env = Environment::new(QosModel::standard(), shop_ontology(), 4);
    let d = Deployer::new(&env);
    d.deploy(&mut env, "kiosk", "shop#Browse", 60.0, 0.0);
    d.deploy(&mut env, "fnac", "shop#BuyBook", 150.0, 18.0);
    d.deploy(&mut env, "music", "shop#BuyCd", 140.0, 15.0);
    let broken = d.deploy_crashing(&mut env, "till-card", "shop#PayByCard", 90.0);
    let backup = d.deploy(&mut env, "till-cash", "shop#PayCash", 220.0, 0.0);

    let comp = env.compose(&shopping_request()).unwrap();
    let report = env.execute(comp).unwrap();
    assert!(report.success);
    assert!(report.substitutions >= 1);
    let pay_invocations: Vec<_> = report
        .invocations
        .iter()
        .filter(|r| r.activity == "pay")
        .collect();
    assert!(pay_invocations
        .iter()
        .any(|r| r.service == broken && r.qos.is_none()));
    assert_eq!(pay_invocations.last().unwrap().service, backup);
}

#[test]
fn behavioural_adaptation_switches_to_alternative_shopping() {
    let mut env = Environment::new(QosModel::standard(), shop_ontology(), 5);
    let log = EventLog::new();
    env.subscribe(Arc::new(log.clone()));
    let d = Deployer::new(&env);
    d.deploy(&mut env, "kiosk", "shop#Browse", 60.0, 0.0);
    d.deploy(&mut env, "fnac", "shop#BuyBook", 150.0, 18.0);
    d.deploy(&mut env, "music", "shop#BuyCd", 140.0, 15.0);
    // Every payment service is broken.
    d.deploy_crashing(&mut env, "till-card", "shop#PayByCard", 90.0);

    // The alternative behaviour skips payment at the counter (pay on
    // delivery): browse + buy only.
    let v2 = UserTask::new(
        "shopping-cod",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("browse2", "shop#Browse")),
            TaskNode::activity(Activity::new("book2", "shop#BuyBook")),
            TaskNode::activity(Activity::new("cd2", "shop#BuyCd")),
        ]),
    )
    .unwrap();
    let mut class = TaskClass::new("shopping-class");
    class.add_behaviour(shopping_task());
    class.add_behaviour(v2);
    env.register_task_class(class);

    let comp = env.compose(&shopping_request()).unwrap();
    let report = env.execute(comp).unwrap();
    assert!(report.success);
    assert_eq!(report.behavioural_adaptations, 1);
    assert_eq!(report.final_task, "shopping-cod");
    // The executed prefix was carried over: browse ran once, under the
    // old behaviour's name.
    let browse_count = report
        .invocations
        .iter()
        .filter(|r| r.qos.is_some() && (r.activity == "browse" || r.activity == "browse2"))
        .count();
    assert_eq!(browse_count, 1);
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, MiddlewareEvent::BehaviouralAdaptation { .. })));
}

#[test]
fn execution_abandons_when_no_strategy_remains() {
    let mut env = Environment::new(QosModel::standard(), shop_ontology(), 6);
    let d = Deployer::new(&env);
    d.deploy(&mut env, "kiosk", "shop#Browse", 60.0, 0.0);
    d.deploy(&mut env, "fnac", "shop#BuyBook", 150.0, 18.0);
    d.deploy(&mut env, "music", "shop#BuyCd", 140.0, 15.0);
    d.deploy_crashing(&mut env, "till-card", "shop#PayByCard", 90.0);

    let comp = env.compose(&shopping_request()).unwrap();
    let err = env.execute(comp).unwrap_err();
    assert_eq!(
        err,
        ExecutionError::Abandoned {
            activity: "pay".to_owned()
        }
    );
}

#[test]
fn drifting_service_triggers_proactive_substitution() {
    let mut env = Environment::new(QosModel::standard(), shop_ontology(), 8);
    let log = EventLog::new();
    env.subscribe(Arc::new(log.clone()));
    let d = Deployer::new(&env);
    let rt = d.rt;
    d.deploy(&mut env, "kiosk", "shop#Browse", 60.0, 0.0);
    // A looping task browsing repeatedly; the preferred kiosk degrades.
    let drifting = {
        let desc = ServiceDescription::new("kiosk-near", "shop#Browse")
            .with_qos(rt, 40.0)
            .with_qos(d.av, 0.99)
            .with_qos(d.price, 0.0);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal).with_drift(2, rt, 20.0))
    };
    let task = UserTask::new(
        "busy-browsing",
        TaskNode::repeat(
            TaskNode::activity(Activity::new("browse", "shop#Browse")),
            qasom_task::LoopBound::new(8.0, 10),
        ),
    )
    .unwrap();
    let request = UserRequest::new(task)
        .constraint("Delay", 1.0, Unit::Seconds)
        .unwrap();
    let comp = env.compose(&request).unwrap();
    let report = env.execute(comp).unwrap();
    assert!(report.success);
    assert!(
        report.substitutions >= 1,
        "the drifting kiosk must be switched away from"
    );
    assert!(report
        .invocations
        .iter()
        .any(|r| r.service != drifting && r.qos.is_some()));
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, MiddlewareEvent::ViolationDetected { .. })));
}

#[test]
fn events_trace_the_full_lifecycle() {
    let (mut env, _) = full_environment(9);
    let log = EventLog::new();
    env.subscribe(Arc::new(log.clone()));
    let comp = env.compose(&shopping_request()).unwrap();
    let _ = env.execute(comp).unwrap();
    let events = log.take();
    assert!(matches!(events[0], MiddlewareEvent::Composed { .. }));
    assert!(matches!(
        events.last().unwrap(),
        MiddlewareEvent::Completed { success: true, .. }
    ));
    let invoked = events
        .iter()
        .filter(|e| matches!(e, MiddlewareEvent::Invoked { .. }))
        .count();
    assert_eq!(invoked, 4);
    // Draining empties the sink's buffer.
    assert!(log.is_empty());
}

/// A bounded log retains only the newest events — the subscriber-side
/// replacement for the retired pull API's retention cap.
#[test]
fn bounded_event_log_keeps_only_the_newest_events() {
    let (mut env, _) = full_environment(9);
    let full = EventLog::new();
    let last = EventLog::bounded(1);
    env.subscribe(Arc::new(full.clone()));
    env.subscribe(Arc::new(last.clone()));
    let comp = env.compose(&shopping_request()).unwrap();
    let _ = env.execute(comp).unwrap();
    let all = full.events();
    assert!(all.len() > 1, "the run emits a full trace");
    // The bounded log holds exactly the newest event of that same
    // stream (the terminal Completed).
    assert_eq!(last.events(), all[all.len() - 1..]);
    assert!(matches!(
        last.events().as_slice(),
        [MiddlewareEvent::Completed { .. }]
    ));
}

#[test]
fn churn_between_compose_and_execute_is_handled() {
    let (mut env, _) = full_environment(10);
    let comp = env.compose(&shopping_request()).unwrap();
    // The bound browse service departs before execution starts.
    let bound = comp.outcome().assignment[0].id();
    env.undeploy(bound);
    let report = env.execute(comp).unwrap();
    assert!(report.success);
    // Dynamic binding picked another browse service.
    let browse = report
        .invocations
        .iter()
        .find(|r| r.activity == "browse" && r.qos.is_some())
        .unwrap();
    assert_ne!(browse.service, bound);
}
