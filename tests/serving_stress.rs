//! Stress tests for the concurrent serving layer: overlapping
//! compositions under the read lock, provider churn on the write lock,
//! epoch-consistent results and deterministic serving counters.

use std::sync::Arc;
use std::thread;

use qasom::{Environment, ServeOutcome, SessionRequest, SharedEnvironment, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_obs::{MemoryRecorder, Recorder};
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskNode, UserTask};

const BASE_PROVIDERS: usize = 6;

/// One concept, `BASE_PROVIDERS` providers `s0..`, response times
/// 40, 41, … — `s0` is deterministically the best until "burst" joins.
fn market(seed: u64) -> SharedEnvironment {
    let mut b = OntologyBuilder::new("d");
    b.concept("A");
    let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), seed);
    let rt = env.model().property("ResponseTime").unwrap();
    for i in 0..BASE_PROVIDERS {
        let desc = ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 40.0 + i as f64);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal));
    }
    SharedEnvironment::new(env)
}

fn request() -> UserRequest {
    UserRequest::new(UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap())
        .weight("Delay", 1.0)
}

/// Registers "burst" (strictly best response time) when absent, removes
/// it when present. Each call advances the registry epoch by exactly
/// one, so `epoch - base_epoch` being odd ⇔ "burst" is registered.
fn toggle_burst(e: &mut Environment) {
    let existing = e
        .registry()
        .iter()
        .find(|(_, d)| d.name() == "burst")
        .map(|(id, _)| id);
    match existing {
        Some(id) => {
            e.undeploy(id);
        }
        None => {
            let rt = e.model().property("ResponseTime").unwrap();
            let desc = ServiceDescription::new("burst", "d#A").with_qos(rt, 10.0);
            let nominal = desc.qos().clone();
            e.deploy(desc, SyntheticService::new(nominal));
        }
    }
}

/// Eight threads compose concurrently (read lock) while a churn thread
/// toggles the best provider (write lock). Every composition, read
/// atomically with the epoch it was computed under, must equal what a
/// single-threaded run would select for that same registry state:
/// "burst" exactly when its epoch says the provider was registered.
#[test]
fn concurrent_compositions_agree_with_their_epoch() {
    let shared = market(11);
    let base_epoch = shared.with(|e| e.epoch());
    assert_eq!(base_epoch, BASE_PROVIDERS as u64);

    let churner = {
        let s = shared.clone();
        thread::spawn(move || {
            for _ in 0..40 {
                s.with_mut(toggle_burst);
            }
        })
    };

    let sessions: Vec<_> = (0..8)
        .map(|_| {
            let s = shared.clone();
            thread::spawn(move || {
                let mut observed = Vec::new();
                for _ in 0..25 {
                    // Composition, epoch and binding resolution happen
                    // under one read guard, so the triple is consistent
                    // even while the churner queues behind us.
                    observed.push(s.with(|e| {
                        let comp = e.compose(&request()).expect("providers always available");
                        let id = comp.outcome().assignment[0].id();
                        let registry = e.registry_snapshot();
                        let name = registry
                            .get(id)
                            .expect("bound under this guard")
                            .name()
                            .to_owned();
                        (e.epoch(), name)
                    }));
                }
                observed
            })
        })
        .collect();

    churner.join().unwrap();
    for handle in sessions {
        for (epoch, name) in handle.join().unwrap() {
            let burst_present = (epoch - base_epoch) % 2 == 1;
            let expected = if burst_present { "burst" } else { "s0" };
            assert_eq!(name, expected, "selection at epoch {epoch}");
        }
    }
}

/// A fixed, single-threaded interleaving of sessions and churn: the
/// full run report (serving counters included) must be byte-identical
/// across repeats of the same seed — the determinism contract CI's
/// `cmp` check relies on.
fn scripted_run(seed: u64) -> String {
    let shared = market(seed);
    let recorder = Arc::new(MemoryRecorder::new());
    shared.with_mut(|e| e.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>));
    for round in 0..12 {
        if round % 3 == 0 {
            shared.with_mut(toggle_burst);
        }
        let session = SessionRequest::new(request()).for_client("stress");
        let outcome = shared.serve_session(&session).expect("session serves");
        assert!(matches!(outcome, ServeOutcome::Completed(_)));
    }
    shared.with(|e| e.run_report("stress").to_compact_string())
}

#[test]
fn scripted_stress_report_is_deterministic_per_seed() {
    let first = scripted_run(42);
    assert_eq!(first, scripted_run(42));
    assert!(first.contains("\"serving\":{"), "report: {first}");
}

/// The serving section accounts for the lock split exactly: one read
/// acquisition per compose-phase, one write per execute/churn, one
/// snapshot per registry hand-out.
#[test]
fn serving_section_reports_the_lock_split() {
    let shared = market(5);
    let recorder = Arc::new(MemoryRecorder::new());
    shared.with_mut(|e| e.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>));
    for _ in 0..5 {
        let outcome = shared
            .serve_session(&SessionRequest::new(request()))
            .expect("session serves");
        assert!(matches!(outcome, ServeOutcome::Completed(_)));
    }
    let registry = shared.with(|e| e.registry_snapshot());
    assert_eq!(registry.len(), BASE_PROVIDERS);

    let report = shared.with(|e| e.run_report("stress"));
    let serving = report.serving.expect("recorder configured");
    assert_eq!(serving.sessions, 5);
    // 5 serve compose-phases + the snapshot `with` + the report `with`.
    assert_eq!(serving.read_locks, 7);
    // 5 serve execute-phases; `set_recorder` ran before the recorder
    // was installed, so it is not observed.
    assert_eq!(serving.write_locks, 5);
    assert_eq!(serving.snapshot_refreshes, 1);
}
