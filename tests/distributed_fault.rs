//! Fault-tolerance tests of distributed QASSA: determinism under loss,
//! degraded-outcome soundness, retry recovery, and the acceptance
//! criteria of the retransmission protocol.

use proptest::prelude::*;
use qasom_netsim::{DeviceProfile, LinkConfig};
use qasom_qos::QosModel;
use qasom_selection::distributed::{DistributedQassa, DistributedSetup, RetryPolicy};
use qasom_selection::workload::{Workload, WorkloadSpec};

fn model() -> QosModel {
    QosModel::standard()
}

fn workload(m: &QosModel, seed: u64) -> Workload {
    WorkloadSpec::evaluation_default()
        .activities(3)
        .services_per_activity(24)
        .build(m, seed)
}

fn lossy_setup(providers: usize, loss: f64, retry: RetryPolicy) -> DistributedSetup {
    DistributedSetup {
        providers,
        link: LinkConfig::new(5.0, 1.0).with_loss(loss),
        provider_profile: DeviceProfile::constrained(),
        coordinator_profile: DeviceProfile::constrained(),
        per_candidate_cost_us: 10,
        reply_timeout_ms: 5_000,
        retry,
        ..DistributedSetup::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Determinism: the same seed over the same lossy link reproduces the
    /// protocol run exactly — message counts, retry counts, simulated
    /// phases and the selected composition.
    #[test]
    fn lossy_runs_are_deterministic_per_seed(
        seed in any::<u64>(),
        providers in 2usize..8,
        loss in 0.0f64..0.6,
    ) {
        let m = model();
        let w = workload(&m, seed);
        let setup = lossy_setup(providers, loss, RetryPolicy::default());
        let d = DistributedQassa::new(&m);
        match (d.run(&w, &setup, seed), d.run(&w, &setup, seed)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.messages, b.messages);
                prop_assert_eq!(a.sim_events, b.sim_events);
                prop_assert_eq!(a.local_phase, b.local_phase);
                prop_assert_eq!(a.global_phase, b.global_phase);
                prop_assert_eq!(a.fault, b.fault);
                prop_assert_eq!(a.outcome.assignment, b.outcome.assignment);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
        }
    }

    /// Soundness of degraded outcomes: whatever subset of providers was
    /// heard, every candidate the coordinator ranks comes from the real
    /// workload — loss can shrink the pool, never invent services.
    #[test]
    fn degraded_pool_is_a_subset_of_the_centralised_pool(
        seed in any::<u64>(),
        loss in 0.0f64..0.7,
        retries in prop_oneof![Just(RetryPolicy::disabled()), Just(RetryPolicy::default())],
    ) {
        let m = model();
        let w = workload(&m, seed);
        let setup = lossy_setup(5, loss, retries);
        if let Ok(report) = DistributedQassa::new(&m).run(&w, &setup, seed) {
            let full = w.candidates();
            prop_assert_eq!(report.outcome.ranked.len(), full.len());
            for (a, ranked) in report.outcome.ranked.iter().enumerate() {
                prop_assert!(ranked.len() <= full[a].len());
                for c in ranked {
                    prop_assert!(
                        full[a].contains(c),
                        "activity {a}: ranked candidate not in the workload pool"
                    );
                }
            }
            // The coverage accounting agrees with the ranked pool.
            for cov in &report.fault.activity_coverage {
                prop_assert_eq!(cov.expected, full[cov.activity].len());
            }
        }
    }
}

/// Transient outage: the network drops *everything* until 120 ms, then
/// heals. The first request round and early retries are lost; a later
/// backoff round lands after the outage clears and restores the complete
/// candidate pool.
#[test]
fn retries_recover_from_a_transient_outage() {
    let m = model();
    let w = workload(&m, 11);
    let setup = DistributedSetup {
        link: LinkConfig::new(5.0, 1.0).with_loss(1.0),
        link_after: Some((120, LinkConfig::new(5.0, 1.0))),
        ..lossy_setup(5, 1.0, RetryPolicy::default())
    };
    let report = DistributedQassa::new(&m)
        .run(&w, &setup, 11)
        .expect("the healed link must carry a full round");
    assert!(
        report.fault.retries_sent > 0,
        "the initial round was dropped, recovery must have retried"
    );
    assert!(
        report.fault.full_coverage() && !report.fault.is_degraded(),
        "post-outage retries must restore the full pool: {:?}",
        report.fault
    );
}

/// Without retries the same transient outage is fatal or degraded: the
/// single request round dies inside the outage window.
#[test]
fn transient_outage_without_retries_is_not_recovered() {
    let m = model();
    let w = workload(&m, 11);
    let setup = DistributedSetup {
        link: LinkConfig::new(5.0, 1.0).with_loss(1.0),
        link_after: Some((120, LinkConfig::new(5.0, 1.0))),
        reply_timeout_ms: 500,
        ..lossy_setup(5, 1.0, RetryPolicy::disabled())
    };
    match DistributedQassa::new(&m).run(&w, &setup, 11) {
        Ok(report) => assert!(report.fault.is_degraded()),
        Err(e) => assert!(matches!(
            e,
            qasom_selection::SelectionError::NoCandidates { .. }
        )),
    }
}

/// Acceptance criterion: at 30 % loss the default retry policy restores
/// full candidate coverage on at least 9 of 10 seeds.
#[test]
fn retries_restore_full_coverage_at_thirty_percent_loss() {
    let m = model();
    let d = DistributedQassa::new(&m);
    let setup = lossy_setup(8, 0.3, RetryPolicy::default());
    let mut full = 0;
    for seed in 0..10u64 {
        let w = workload(&m, seed);
        if let Ok(report) = d.run(&w, &setup, seed) {
            if report.fault.full_coverage() {
                full += 1;
            }
        }
    }
    assert!(full >= 9, "only {full}/10 seeds reached full coverage");
}

/// Acceptance criterion: with retries disabled the same link makes runs
/// visibly degraded — the report flags it rather than silently returning
/// a best-of-partial outcome.
#[test]
fn without_retries_thirty_percent_loss_is_flagged_degraded() {
    let m = model();
    let d = DistributedQassa::new(&m);
    let setup = lossy_setup(8, 0.3, RetryPolicy::disabled());
    let mut degraded = 0;
    for seed in 0..10u64 {
        let w = workload(&m, seed);
        match d.run(&w, &setup, seed) {
            Ok(report) => {
                assert_eq!(report.fault.retries_sent, 0);
                if report.fault.is_degraded() {
                    assert!(report.fault.providers_heard < report.fault.providers_expected);
                    assert!(!report.fault.missing_providers.is_empty());
                    degraded += 1;
                }
            }
            Err(_) => degraded += 1,
        }
    }
    assert!(
        degraded >= 5,
        "expected most seeds degraded without retries, got {degraded}/10"
    );
}
