//! Integration checks for the deterministic schedule explorer: the
//! standard suite clears the acceptance floor (>= 1,000 distinct
//! schedules across the protocol models, all deadlock- and
//! violation-free) and its seeded report output is byte-identical
//! across runs.

use qasom_analysis::check::{run_suite, SuiteConfig};
use qasom_obs::report::RunReport;
use qasom_obs::{MemoryRecorder, Recorder};

#[test]
fn standard_suite_clears_the_schedule_floor() {
    let suite = run_suite(&SuiteConfig::default());
    assert!(suite.ok(), "every model must prove out");
    assert!(
        suite.schedules() >= 1000,
        "acceptance floor: >= 1000 schedules, got {}",
        suite.schedules()
    );
    assert_eq!(suite.deadlocks(), 0);
    assert_eq!(suite.violations(), 0);
    assert_eq!(suite.results.len(), 3, "three protocol models");
    for result in &suite.results {
        assert!(!result.truncated, "{} hit the safety cap", result.model);
        assert!(result.schedules > 0, "{} explored nothing", result.model);
    }
}

#[test]
fn seeded_check_reports_are_byte_identical() {
    let render = |seed: u64| {
        let cfg = SuiteConfig {
            seed,
            ..SuiteConfig::default()
        };
        let suite = run_suite(&cfg);
        let recorder = MemoryRecorder::new();
        suite.record(&recorder);
        let mut report = RunReport::new(cfg.seed, "check");
        report.check = Some(suite.to_section());
        if let Some(snapshot) = recorder.snapshot() {
            report.metrics = snapshot;
        }
        report.to_pretty_string()
    };
    assert_eq!(render(42), render(42), "same seed, same bytes");
    // Different sibling orders must not change what was proven — only
    // the order schedules were visited in.
    let a = run_suite(&SuiteConfig::default());
    let b = run_suite(&SuiteConfig {
        seed: 7,
        ..SuiteConfig::default()
    });
    assert_eq!(a.schedules(), b.schedules(), "counts are seed-independent");
    assert_eq!(a.ok(), b.ok());
}
