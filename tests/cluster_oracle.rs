//! Scatter/gather over capability-bucket shards is equivalent to the
//! single-registry oracle.
//!
//! The deterministic plane drives seeded churn into an origin registry
//! and, at every sync point, asserts that fanning a discovery query
//! across 1, 2, 4 or 8 shard replicas and merging the answers yields
//! *byte-identical* candidates — same ids, same degrees, same effective
//! QoS, same order — as one `Discovery::discover` over the origin.
//! Mid-gossip states (some shards synced, some lagging) must report a
//! bounded staleness instead of wrong answers, and a lost shard must
//! degrade coverage without ever panicking.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qasom_cluster::{ClusterConfig, ClusterSim, ShardSet};
use qasom_qos::QosModel;
use qasom_registry::{
    Discovery, DiscoveryQuery, RegistrySync, ServiceDescription, ServiceRegistry,
};
use qasom_task::Activity;

const FUNCTIONS: usize = 5;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn service(rng: &mut StdRng, model: &QosModel, name: String) -> ServiceDescription {
    let f = rng.gen_range(0..FUNCTIONS);
    let iri = if rng.gen_range(0..2) == 1 {
        format!("cl#F{f}Sub")
    } else {
        format!("cl#F{f}")
    };
    let mut desc = ServiceDescription::new(name, &iri);
    if let Some(rt) = model.property("ResponseTime") {
        desc = desc.with_qos(rt, 10.0 + f64::from(rng.gen_range(0..90u32)));
    }
    desc
}

fn churn(
    rng: &mut StdRng,
    model: &QosModel,
    origin: &mut ServiceRegistry,
    step: usize,
    ops: usize,
) {
    for j in 0..ops {
        if origin.is_empty() || rng.gen_range(0..3) > 0 {
            origin.register(service(rng, model, format!("c{step}-{j}")));
        } else {
            let live = origin.len();
            let victim = origin.iter().nth(rng.gen_range(0..live)).map(|(id, _)| id);
            if let Some(id) = victim {
                origin.deregister(id);
            }
        }
    }
}

/// One probe per capability, base and subconcept alternating, so both
/// exact and plug-in (subsumption) matches are exercised.
fn probes() -> Vec<Activity> {
    (0..FUNCTIONS)
        .map(|f| {
            if f % 2 == 0 {
                Activity::new(format!("p{f}"), &format!("cl#F{f}"))
            } else {
                Activity::new(format!("p{f}"), &format!("cl#F{f}Sub"))
            }
        })
        .collect()
}

#[test]
fn scatter_gather_is_byte_identical_to_the_oracle_over_64_seeds() {
    let ontology = ClusterSim::build_ontology(FUNCTIONS);
    let model = QosModel::standard();
    let probes = probes();
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut origin = ServiceRegistry::with_ontology(Arc::clone(&ontology));
        let mut sets: Vec<ShardSet> = SHARD_COUNTS
            .iter()
            .map(|&n| ShardSet::new(n, Arc::clone(&ontology)))
            .collect();
        for step in 0..6 {
            churn(&mut rng, &model, &mut origin, step, 8);
            let oracle = Discovery::new(&ontology, &model);
            for set in &mut sets {
                set.sync_all(&origin);
                for activity in &probes {
                    let query = DiscoveryQuery::new(activity);
                    let expected = oracle.discover(&origin, &query);
                    let gathered = set.scatter_gather(&model, &query);
                    assert_eq!(
                        gathered.candidates,
                        expected,
                        "seed {seed} step {step} shards {} probe {}",
                        set.shard_count(),
                        activity.name(),
                    );
                    assert_eq!(gathered.shards_lost, 0);
                    assert_eq!(gathered.min_cursor, origin.sync_cursor());
                }
            }
        }
    }
}

#[test]
fn snapshot_fallback_paths_reach_the_same_answer() {
    // Aggressive retention forces every sync onto the snapshot path;
    // the merged answer must not change.
    let ontology = ClusterSim::build_ontology(FUNCTIONS);
    let model = QosModel::standard();
    let probes = probes();
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut origin = ServiceRegistry::with_ontology(Arc::clone(&ontology));
        origin.set_event_retention(1);
        let mut set = ShardSet::new(4, Arc::clone(&ontology));
        for step in 0..4 {
            churn(&mut rng, &model, &mut origin, step, 6);
            set.sync_all(&origin);
            let oracle = Discovery::new(&ontology, &model);
            for activity in &probes {
                let query = DiscoveryQuery::new(activity);
                assert_eq!(
                    set.scatter_gather(&model, &query).candidates,
                    oracle.discover(&origin, &query),
                    "seed {seed} step {step}"
                );
            }
        }
    }
}

#[test]
fn mid_gossip_reads_report_bounded_staleness_not_wrong_answers() {
    let ontology = ClusterSim::build_ontology(FUNCTIONS);
    let model = QosModel::standard();
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5157);
        let mut origin = ServiceRegistry::with_ontology(Arc::clone(&ontology));
        let mut set = ShardSet::new(4, Arc::clone(&ontology));
        churn(&mut rng, &model, &mut origin, 0, 10);
        set.sync_all(&origin);
        let synced_head = origin.sync_cursor();

        // The origin moves on; only shards 0 and 1 catch up — a
        // mid-gossip state.
        churn(&mut rng, &model, &mut origin, 1, 5);
        set.sync_shard(0, &origin);
        set.sync_shard(1, &origin);
        let head = origin.sync_cursor();
        let lag = synced_head.lag_behind(head);
        assert!(lag > 0 && lag <= 10, "churn produced 5..=10 events");

        // Staleness is exactly the lagging shards' distance to the head,
        // and the gather's min_cursor exposes the bound per query.
        assert_eq!(set.max_staleness(head), lag);
        let activity = Activity::new("p0", "cl#F0");
        let gathered = set.scatter_gather(&model, &DiscoveryQuery::new(&activity));
        assert_eq!(gathered.min_cursor, synced_head);
        assert!(gathered.min_cursor.lag_behind(head) <= 10);

        // Catching the stragglers up restores oracle equality.
        set.sync_all(&origin);
        assert_eq!(set.max_staleness(head), 0);
        let oracle = Discovery::new(&ontology, &model);
        let query = DiscoveryQuery::new(&activity);
        assert_eq!(
            set.scatter_gather(&model, &query).candidates,
            oracle.discover(&origin, &query)
        );
    }
}

#[test]
fn shard_loss_is_degraded_coverage_never_a_panic() {
    let ontology = ClusterSim::build_ontology(FUNCTIONS);
    let model = QosModel::standard();
    let probes = probes();
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1055);
        let mut origin = ServiceRegistry::with_ontology(Arc::clone(&ontology));
        let mut set = ShardSet::new(4, Arc::clone(&ontology));
        churn(&mut rng, &model, &mut origin, 0, 20);
        set.sync_all(&origin);
        set.fail_shard((seed % 4) as usize);
        let oracle = Discovery::new(&ontology, &model);
        let mut heard = 0usize;
        let mut expected_total = 0usize;
        for activity in &probes {
            let query = DiscoveryQuery::new(activity);
            let expected = oracle.discover(&origin, &query);
            let gathered = set.scatter_gather(&model, &query);
            assert_eq!(gathered.shards_lost, 1);
            assert!(gathered.degraded());
            // Every candidate the gather produces is one the oracle
            // knows (no invention, only omission).
            for c in &gathered.candidates {
                assert!(expected.contains(c), "seed {seed}: invented candidate");
            }
            heard += gathered.candidates.len();
            expected_total += expected.len();
        }
        assert!(heard <= expected_total);
    }
}

#[test]
fn the_netsim_plane_agrees_with_the_oracle_across_shard_counts() {
    // The full gossip protocol (loss-free links) over every shard count:
    // the closing audit in the report must find byte-equality.
    for &shards in &SHARD_COUNTS {
        for seed in 0..4u64 {
            let cfg = ClusterConfig {
                shards,
                services: 24,
                churn_rounds: 4,
                churn_per_round: 3,
                ..ClusterConfig::default()
            };
            let report = ClusterSim::new(cfg).run(seed);
            assert!(report.converged, "shards {shards} seed {seed}");
            assert!(report.oracle_match, "shards {shards} seed {seed}");
            assert_eq!(report.coverage_ratio(), 1.0);
        }
    }
}
