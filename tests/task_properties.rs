//! Property-based tests of the task model: BPEL round-tripping and
//! behavioural-graph invariants over randomly generated task structures.

use proptest::prelude::*;
use qasom_task::{bpel, Activity, BehaviouralGraph, LoopBound, TaskNode, UserTask, VertexKind};

/// Structure skeleton; names are assigned afterwards so they stay unique.
#[derive(Debug, Clone)]
enum Shape {
    Leaf,
    Seq(Vec<Shape>),
    Par(Vec<Shape>),
    Choice(Vec<Shape>),
    Loop(Box<Shape>, u32, u32),
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = Just(Shape::Leaf);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::Seq),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::Par),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::Choice),
            (inner, 1u32..4, 0u32..3).prop_map(|(b, e, extra)| Shape::Loop(
                Box::new(b),
                e,
                e + extra
            )),
        ]
    })
}

fn to_node(shape: &Shape, counter: &mut usize) -> TaskNode {
    match shape {
        Shape::Leaf => {
            let i = *counter;
            *counter += 1;
            TaskNode::activity(
                Activity::new(format!("act{i}"), &format!("gen#F{}", i % 5))
                    .with_input("gen#In")
                    .with_output(&format!("gen#Out{}", i % 3)),
            )
        }
        Shape::Seq(cs) => TaskNode::sequence(cs.iter().map(|c| to_node(c, counter))),
        Shape::Par(cs) => TaskNode::parallel(cs.iter().map(|c| to_node(c, counter))),
        Shape::Choice(cs) => TaskNode::choice(
            cs.iter()
                .enumerate()
                .map(|(i, c)| (1.0 + i as f64, to_node(c, counter))),
        ),
        Shape::Loop(b, e, m) => TaskNode::repeat(
            to_node(b, counter),
            LoopBound::new(f64::from(*e), (*m).max(1)),
        ),
    }
}

fn arb_task() -> impl Strategy<Value = UserTask> {
    arb_shape().prop_map(|s| {
        let mut counter = 0;
        UserTask::new("generated", to_node(&s, &mut counter)).expect("generated tasks are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bpel_round_trips(task in arb_task()) {
        let printed = bpel::print(&task);
        let reparsed = bpel::parse(&printed).expect("printed BPEL parses");
        prop_assert_eq!(task, reparsed);
    }

    #[test]
    fn graph_is_acyclic_single_source_single_sink(task in arb_task()) {
        let g = BehaviouralGraph::from_task(&task);
        prop_assert!(g.is_acyclic());
        let sources: Vec<_> = g.vertex_ids().filter(|&v| g.predecessors(v).is_empty()).collect();
        let sinks: Vec<_> = g.vertex_ids().filter(|&v| g.successors(v).is_empty()).collect();
        prop_assert_eq!(sources, vec![g.start()]);
        prop_assert_eq!(sinks, vec![g.end()]);
    }

    #[test]
    fn graph_preserves_activity_count(task in arb_task()) {
        let g = BehaviouralGraph::from_task(&task);
        prop_assert_eq!(g.activity_vertices().count(), task.activity_count());
        prop_assert_eq!(g.len(), task.activity_count() + 2);
    }

    #[test]
    fn every_vertex_is_reachable_from_start(task in arb_task()) {
        let g = BehaviouralGraph::from_task(&task);
        prop_assert_eq!(g.reachable_from(g.start()).len(), g.len());
    }

    #[test]
    fn iteration_weights_are_at_least_one(task in arb_task()) {
        let g = BehaviouralGraph::from_task(&task);
        for v in g.activity_vertices() {
            prop_assert!(g.vertex(v).iteration_weight() >= 1.0);
        }
        prop_assert_eq!(g.vertex(g.start()).kind(), VertexKind::Start);
    }

    #[test]
    fn restriction_to_all_activities_keeps_them(task in arb_task()) {
        let g = BehaviouralGraph::from_task(&task);
        let keep: Vec<_> = g.activity_vertices().collect();
        let (r, back) = g.restriction(&keep);
        prop_assert_eq!(r.activity_vertices().count(), keep.len());
        // The back-mapping is injective into the original graph.
        let mut images: Vec<_> = r.activity_vertices().map(|v| back[&v]).collect();
        images.sort();
        images.dedup();
        prop_assert_eq!(images.len(), keep.len());
    }

    #[test]
    fn restriction_edges_reflect_original_reachability(task in arb_task()) {
        let g = BehaviouralGraph::from_task(&task);
        let keep: Vec<_> = g.activity_vertices().take(3).collect();
        let (r, back) = g.restriction(&keep);
        for (u, v) in r.edges() {
            // Skip edges touching the synthetic end (it has none) and
            // check the original graph can realise each edge.
            let (ou, ov) = (back[&u], back[&v]);
            prop_assert!(
                g.reachable_from(ou).contains(&ov),
                "restricted edge {u}->{v} has no original path"
            );
        }
    }

    #[test]
    fn activity_indices_are_stable_across_iterations(task in arb_task()) {
        let a: Vec<_> = task.activities().map(|r| (r.index(), r.activity().name().to_owned())).collect();
        let b: Vec<_> = task.activities().map(|r| (r.index(), r.activity().name().to_owned())).collect();
        prop_assert_eq!(a, b);
    }
}
