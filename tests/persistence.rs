//! Crash-recovery guarantees of the registry persistence layer
//! (DESIGN.md §14):
//!
//! * **kill-and-replay oracle** — a registry recovered from any crash
//!   image is byte-identical to the never-crashed one (state encoding,
//!   capability index, epoch, WAL cursor);
//! * **torn tails** — a WAL whose last record is bit-flipped or
//!   truncated at *every possible byte* recovers cleanly to the last
//!   durable point, never panics, never replays a partial record;
//! * **checkpoint boundary** — a checkpoint compacts the in-memory
//!   event log exactly like a never-crashed registry that called
//!   `compact_events`, so replicas synced before the crash observe the
//!   same `EventLogGap` fallback after recovery.

use std::sync::Arc;

use qasom_ontology::{Ontology, OntologyBuilder};
use qasom_registry::persist::wal::split_frames;
use qasom_registry::persist::{
    encode_state, MemoryBackend, PersistConfig, Persistence, PersistentRegistry,
};
use qasom_registry::{RegistrySync, ReplicaCursor, ServiceDescription, SyncResponse};

fn ontology() -> Arc<Ontology> {
    let mut b = OntologyBuilder::new("p");
    let pay = b.concept("Pay");
    b.subconcept("PayByCard", pay);
    b.concept("Locate");
    Arc::new(b.build().unwrap())
}

fn open(
    backend: MemoryBackend,
    checkpoint_every: usize,
) -> (PersistentRegistry, qasom_registry::persist::RecoveryReport) {
    PersistentRegistry::open(
        backend,
        PersistConfig { checkpoint_every },
        Some(ontology()),
    )
    .unwrap()
}

/// Seeded churn: a deterministic mix of registrations and departures.
fn churn(registry: &mut PersistentRegistry, rounds: usize) {
    let functions = ["p#Pay", "p#PayByCard", "p#Locate"];
    for i in 0..rounds {
        let function = functions[i % functions.len()];
        registry
            .register(ServiceDescription::new(format!("s{i}"), function))
            .unwrap();
        if i % 3 == 2 {
            let victim = registry.registry().iter().next().map(|(id, _)| id).unwrap();
            registry.deregister(victim).unwrap();
        }
    }
}

/// The byte-for-byte oracle: recovered ≡ never-crashed.
fn assert_equivalent(recovered: &PersistentRegistry, oracle: &PersistentRegistry) {
    assert_eq!(
        encode_state(recovered.registry()),
        encode_state(oracle.registry()),
        "slot-vector encoding must match byte for byte"
    );
    assert!(
        recovered.registry().index_eq(oracle.registry()),
        "capability index (and interned ids) must match"
    );
    assert!(recovered.registry().index_matches_rebuild());
    assert_eq!(
        recovered.registry().event_cursor(),
        oracle.registry().event_cursor(),
        "epoch must match"
    );
    assert_eq!(
        recovered.journal().wal_cursor(),
        oracle.journal().wal_cursor(),
        "replica cursor (WAL position) must match"
    );
}

#[test]
fn empty_store_boots_fresh() {
    let (registry, report) = open(MemoryBackend::new(), 0);
    assert!(!report.recovered_anything());
    assert!(registry.registry().is_empty());
    assert_eq!(registry.registry().event_cursor(), 0);
}

#[test]
fn wal_only_recovery_is_byte_identical() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 0);
    churn(&mut oracle, 12);
    let (recovered, report) = open(backend.fork(), 0);
    assert!(report.recovered_anything());
    assert!(!report.snapshot_loaded);
    assert_equivalent(&recovered, &oracle);
}

#[test]
fn snapshot_only_recovery_is_byte_identical() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 0);
    churn(&mut oracle, 12);
    oracle.checkpoint().unwrap();
    assert_eq!(backend.wal_len(), 0, "checkpoint truncates the WAL");
    let (recovered, report) = open(backend.fork(), 0);
    assert!(report.snapshot_loaded);
    assert_eq!(report.wal_events_applied, 0);
    assert_equivalent(&recovered, &oracle);
}

#[test]
fn snapshot_plus_wal_tail_recovery_is_byte_identical() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 0);
    churn(&mut oracle, 8);
    oracle.checkpoint().unwrap();
    churn(&mut oracle, 5);
    let (recovered, report) = open(backend.fork(), 0);
    assert!(report.snapshot_loaded);
    assert!(report.wal_events_applied > 0);
    assert_equivalent(&recovered, &oracle);
}

#[test]
fn automatic_checkpoints_fire_and_stay_equivalent() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 4);
    churn(&mut oracle, 20);
    assert!(oracle.journal().stats().checkpoints > 0);
    let (recovered, _) = open(backend.fork(), 4);
    assert_equivalent(&recovered, &oracle);
}

#[test]
fn truncation_at_every_byte_of_the_last_record_recovers_cleanly() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 0);
    churn(&mut oracle, 6);
    let wal = backend.fork().wal_bytes().unwrap();
    let (frames, torn) = split_frames(&wal);
    assert!(torn.is_none() && frames.len() >= 2);
    let boundary = wal.len() - (frames.last().unwrap().len() + 8);

    // The expected durable point: everything but the last record.
    let clean = backend.fork();
    clean.set_wal(wal[..boundary].to_vec());
    let (expected, _) = open(clean, 0);

    for cut in boundary + 1..wal.len() {
        let crash = backend.fork();
        crash.set_wal(wal[..cut].to_vec());
        let (recovered, report) = open(crash, 0);
        assert!(report.torn_tail, "cut at byte {cut} must read as a tear");
        assert_equivalent(&recovered, &expected);
    }
}

#[test]
fn bit_flip_at_every_byte_of_the_last_record_recovers_cleanly() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 0);
    churn(&mut oracle, 6);
    let wal = backend.fork().wal_bytes().unwrap();
    let (frames, _) = split_frames(&wal);
    let boundary = wal.len() - (frames.last().unwrap().len() + 8);

    let clean = backend.fork();
    clean.set_wal(wal[..boundary].to_vec());
    let (expected, _) = open(clean, 0);

    for i in boundary..wal.len() {
        let mut bytes = wal.clone();
        bytes[i] ^= 0x40;
        let crash = backend.fork();
        crash.set_wal(bytes);
        let (recovered, report) = open(crash, 0);
        assert!(report.torn_tail, "flip at byte {i} must read as a tear");
        assert_equivalent(&recovered, &expected);
    }
}

#[test]
fn recovery_trims_the_torn_tail_so_the_store_reopens_clean() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 0);
    churn(&mut oracle, 6);
    let crash = backend.fork();
    let mut wal = crash.wal_bytes().unwrap();
    let last = wal.len() - 1;
    wal[last] ^= 0xFF;
    crash.set_wal(wal);
    let (first, report) = open(crash.clone(), 0);
    assert!(report.torn_tail);
    let (second, report2) = open(crash, 0);
    assert!(!report2.torn_tail, "the tear was trimmed on first recovery");
    assert_equivalent(&second, &first);
}

#[test]
fn checkpoint_compacts_the_event_log_like_a_never_crashed_registry() {
    let backend = MemoryBackend::new();
    let (mut persistent, _) = open(backend.clone(), 0);
    churn(&mut persistent, 9);
    let head = persistent.registry().event_cursor();
    persistent.checkpoint().unwrap();
    assert_eq!(
        persistent.registry().oldest_retained_event(),
        head,
        "checkpoint compacts up to the snapshot boundary"
    );

    let (recovered, _) = open(backend.fork(), 0);
    assert_eq!(recovered.registry().oldest_retained_event(), head);

    // A replica whose cursor predates the compaction boundary gets the
    // EventLogGap snapshot fallback from the recovered registry...
    match recovered.registry().sync_from(ReplicaCursor::ORIGIN) {
        SyncResponse::Snapshot(snap) => assert_eq!(snap.cursor, head),
        SyncResponse::Delta(d) => panic!("expected snapshot fallback, got delta of {}", d.len()),
    }
    // ...while one at the boundary keeps the incremental path.
    match recovered.registry().sync_from(ReplicaCursor::new(head)) {
        SyncResponse::Delta(events) => assert!(events.is_empty()),
        SyncResponse::Snapshot(_) => panic!("a caught-up replica needs no snapshot"),
    }
}

#[test]
fn crash_between_snapshot_and_truncate_skips_stale_records() {
    let backend = MemoryBackend::new();
    let (mut oracle, _) = open(backend.clone(), 0);
    churn(&mut oracle, 6);

    // Simulate the torn checkpoint: the snapshot became durable but the
    // WAL truncation never happened — the stale WAL must be skipped,
    // not replayed on top of the snapshot.
    let wal = backend.fork().wal_bytes().unwrap();
    let snapshot = encode_state(oracle.registry());
    let crash = backend.fork();
    {
        let mut handle = crash.clone();
        handle.write_snapshot(&snapshot).unwrap();
    }
    crash.set_wal(wal);
    let (recovered, report) = open(crash, 0);
    assert!(report.snapshot_loaded);
    assert!(report.wal_events_skipped > 0);
    assert_eq!(report.wal_events_applied, 0);
    assert_equivalent(&recovered, &oracle);
}
