//! Property-based tests of the adaptation layer: homeomorphism
//! soundness, order-embedding soundness, and monitor behaviour.

use std::collections::HashSet;

use proptest::prelude::*;
use qasom_adaptation::{find_homeomorphism, find_order_embedding, MonitorConfig, QosMonitor};
use qasom_qos::QosModel;
use qasom_registry::{ServiceDescription, ServiceRegistry};
use qasom_task::{Activity, BehaviouralGraph, TaskNode, UserTask, VertexId};

/// Random small DAG-ish tasks: a sequence of blocks, each block either a
/// single activity or a parallel group.
fn arb_blocks() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..4, 1..5)
}

fn task_from_blocks(blocks: &[usize], prefix: &str) -> UserTask {
    let mut counter = 0;
    let nodes: Vec<TaskNode> = blocks
        .iter()
        .map(|&width| {
            let acts: Vec<TaskNode> = (0..width)
                .map(|_| {
                    let i = counter;
                    counter += 1;
                    TaskNode::activity(Activity::new(format!("{prefix}{i}"), &format!("h#F{i}")))
                })
                .collect();
            if acts.len() == 1 {
                acts.into_iter().next().unwrap()
            } else {
                TaskNode::parallel(acts)
            }
        })
        .collect();
    UserTask::new(format!("{prefix}-task"), TaskNode::sequence(nodes)).unwrap()
}

fn name_matcher(
    pattern: &BehaviouralGraph,
    host: &BehaviouralGraph,
) -> impl FnMut(VertexId, VertexId) -> bool {
    let p = pattern.clone();
    let h = host.clone();
    move |pv, hv| match (p.vertex(pv).activity(), h.vertex(hv).activity()) {
        (Some(pa), Some(ha)) => pa.function() == ha.function(),
        (None, None) => p.vertex(pv).kind() == h.vertex(hv).kind(),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every graph is homeomorphic to itself, with the identity as a
    /// valid witness.
    #[test]
    fn identity_homeomorphism_exists(blocks in arb_blocks()) {
        let t = task_from_blocks(&blocks, "a");
        let g = BehaviouralGraph::from_task(&t);
        let mut m = name_matcher(&g, &g);
        let h = find_homeomorphism(&g, &g, &mut m, &[]).expect("identity embedding");
        for v in g.vertex_ids() {
            prop_assert_eq!(h.image(v), Some(v));
        }
    }

    /// Soundness of the homeomorphism witness: injective vertex map,
    /// every path is a real host path connecting the right images, and
    /// internal path vertices are pairwise disjoint and avoid images.
    #[test]
    fn homeomorphism_witness_is_valid(blocks in arb_blocks(), extra in 0usize..3) {
        // Host: the same task with `extra` activities appended. The
        // pattern ends in a width-1 block so only a single pattern edge
        // (tail → end) needs to route through the appended vertices —
        // with a parallel tail, two pattern edges would have to share
        // the appended vertex, which vertex-disjointness rightly forbids.
        let mut blocks = blocks;
        blocks.push(1);
        let pattern_task = task_from_blocks(&blocks, "a");
        let mut host_blocks = blocks.clone();
        host_blocks.extend(std::iter::repeat_n(1, extra));
        let host_task = task_from_blocks(&host_blocks, "a");
        let pattern = BehaviouralGraph::from_task(&pattern_task);
        let host = BehaviouralGraph::from_task(&host_task);
        let mut m = name_matcher(&pattern, &host);
        let Some(h) = find_homeomorphism(&pattern, &host, &mut m, &[]) else {
            // The pattern's end vertex must map to the host's end; with
            // extra activities appended the pattern edge tail→end needs a
            // path through the appended activities, which exists — so the
            // embedding must be found.
            return Err(TestCaseError::fail("expected an embedding"));
        };
        // Injectivity.
        let images: HashSet<_> = h.vertex_map.values().collect();
        prop_assert_eq!(images.len(), h.vertex_map.len());
        // Paths are real and disjoint.
        let mut internal_seen: HashSet<VertexId> = HashSet::new();
        for ((u, v), path) in &h.paths {
            prop_assert_eq!(path.first(), Some(&h.vertex_map[u]));
            prop_assert_eq!(path.last(), Some(&h.vertex_map[v]));
            for w in path.windows(2) {
                prop_assert!(host.has_edge(w[0], w[1]), "{} -> {} is not a host edge", w[0], w[1]);
            }
            for w in &path[1..path.len() - 1] {
                prop_assert!(internal_seen.insert(*w), "internal vertex {w} reused");
                prop_assert!(!images.contains(w), "internal vertex {w} is an image");
            }
        }
    }

    /// Soundness of order embeddings: injective and reachability-
    /// preserving.
    #[test]
    fn order_embedding_preserves_reachability(blocks in arb_blocks()) {
        // Host: a fully sequential version of the same activities (a
        // linear extension — always a valid refinement).
        let pattern_task = task_from_blocks(&blocks, "a");
        let n: usize = blocks.iter().sum();
        let host_task = task_from_blocks(&vec![1; n], "a");
        let pattern = BehaviouralGraph::from_task(&pattern_task);
        let host = BehaviouralGraph::from_task(&host_task);
        let mut m = name_matcher(&pattern, &host);
        let map = find_order_embedding(&pattern, &host, &mut m, &[])
            .expect("a linear extension always embeds");
        let images: HashSet<_> = map.values().collect();
        prop_assert_eq!(images.len(), map.len());
        for (u, v) in pattern.edges() {
            let (hu, hv) = (map[&u], map[&v]);
            prop_assert!(host.reachable_from(hu).contains(&hv));
        }
    }

    /// Monitor estimates converge to the sample mean and the window
    /// bounds them.
    #[test]
    fn monitor_estimate_is_bounded_by_observations(
        values in prop::collection::vec(1.0f64..1e4, 1..40),
        window in 1usize..20,
    ) {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let mut reg = ServiceRegistry::new();
        let id = reg.register(ServiceDescription::new("s", "d#F"));
        let mut monitor = QosMonitor::with_config(MonitorConfig { window, ewma_alpha: 0.3 });
        for &v in &values {
            let mut q = qasom_qos::QosVector::new();
            q.set(rt, v);
            monitor.observe(id, &q);
        }
        let est = monitor.estimate(id).unwrap().get(rt).unwrap();
        let tail: Vec<f64> = values.iter().rev().take(window).copied().collect();
        let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "estimate {est} outside [{lo}, {hi}]");
    }

    /// A constant series predicts itself (no spurious trend).
    #[test]
    fn constant_series_predicts_constant(value in 1.0f64..1e4, n in 2usize..20) {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let mut reg = ServiceRegistry::new();
        let id = reg.register(ServiceDescription::new("s", "d#F"));
        let mut monitor = QosMonitor::new();
        for _ in 0..n {
            let mut q = qasom_qos::QosVector::new();
            q.set(rt, value);
            monitor.observe(id, &q);
        }
        let predicted = monitor.predict(id).unwrap().get(rt).unwrap();
        prop_assert!((predicted - value).abs() < 1e-6, "{predicted} vs {value}");
    }
}
