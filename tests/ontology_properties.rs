//! Property-based tests of the ontology substrate on random DAG
//! taxonomies.

use proptest::prelude::*;
use qasom_ontology::{MatchDegree, Ontology, OntologyBuilder, Similarity};

/// A random taxonomy: `n` concepts, each with parents drawn only from
/// earlier concepts (guaranteeing acyclicity), plus random equivalences
/// to alias concepts.
#[derive(Debug, Clone)]
struct TaxonomySpec {
    parents: Vec<Vec<usize>>, // parents[i] ⊆ 0..i
    aliases: Vec<usize>,      // one alias concept per referenced base
}

fn arb_taxonomy() -> impl Strategy<Value = TaxonomySpec> {
    (2usize..24)
        .prop_flat_map(|n| {
            let parents = (0..n)
                .map(|i| {
                    if i == 0 {
                        Just(Vec::new()).boxed()
                    } else {
                        prop::collection::vec(0..i, 0..3.min(i + 1)).boxed()
                    }
                })
                .collect::<Vec<_>>();
            (parents, prop::collection::vec(0..n, 0..3))
        })
        .prop_map(|(parents, aliases)| TaxonomySpec { parents, aliases })
}

fn build(spec: &TaxonomySpec) -> (Ontology, Vec<qasom_ontology::ConceptId>) {
    let mut b = OntologyBuilder::new("t");
    let ids: Vec<_> = (0..spec.parents.len())
        .map(|i| b.concept(&format!("C{i}")))
        .collect();
    for (i, ps) in spec.parents.iter().enumerate() {
        for &p in ps {
            b.subclass(ids[i], ids[p]);
        }
    }
    for (k, &base) in spec.aliases.iter().enumerate() {
        let alias = b.concept_iri(qasom_ontology::Iri::new("alias", format!("A{k}")));
        b.equivalent(alias, ids[base]);
    }
    (b.build().expect("parents ⊆ earlier ⇒ acyclic"), ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Subsumption is reflexive and transitive on every taxonomy.
    #[test]
    fn subsumption_is_a_preorder(spec in arb_taxonomy()) {
        let (o, ids) = build(&spec);
        for &a in &ids {
            prop_assert!(o.is_subconcept_of(a, a));
        }
        for &a in &ids {
            for &b in &ids {
                for &c in &ids {
                    if o.is_subconcept_of(a, b) && o.is_subconcept_of(b, c) {
                        prop_assert!(o.is_subconcept_of(a, c));
                    }
                }
            }
        }
    }

    /// Antisymmetry modulo equivalence: mutual subsumption means the
    /// concepts are the same (possibly via declared equivalence).
    #[test]
    fn mutual_subsumption_implies_sameness(spec in arb_taxonomy()) {
        let (o, ids) = build(&spec);
        for &a in &ids {
            for &b in &ids {
                if o.is_subconcept_of(a, b) && o.is_subconcept_of(b, a) {
                    prop_assert!(o.same_concept(a, b));
                }
            }
        }
    }

    /// The match lattice is consistent with subsumption.
    #[test]
    fn match_degree_is_consistent(spec in arb_taxonomy()) {
        let (o, ids) = build(&spec);
        for &req in &ids {
            for &off in &ids {
                let d = o.match_degree(req, off);
                match d {
                    MatchDegree::Exact => prop_assert!(o.same_concept(req, off)),
                    MatchDegree::PlugIn => prop_assert!(o.is_subconcept_of(off, req)),
                    MatchDegree::Subsumes => prop_assert!(o.is_subconcept_of(req, off)),
                    MatchDegree::Intersection => {
                        prop_assert!(o.lca(req, off).is_some());
                        prop_assert!(!o.is_subconcept_of(req, off));
                        prop_assert!(!o.is_subconcept_of(off, req));
                    }
                    MatchDegree::Fail => {
                        prop_assert!(
                            o.lca(req, off).is_none_or(|l| o.depth(l) == 0)
                        );
                    }
                }
                // Matching degree symmetry relations.
                let back = o.match_degree(off, req);
                if d == MatchDegree::PlugIn {
                    prop_assert_eq!(back, MatchDegree::Subsumes);
                }
                if d == MatchDegree::Exact {
                    prop_assert_eq!(back, MatchDegree::Exact);
                }
            }
        }
    }

    /// The LCA is a common ancestor and no common ancestor is deeper.
    #[test]
    fn lca_is_deepest_common_ancestor(spec in arb_taxonomy()) {
        let (o, ids) = build(&spec);
        for &a in &ids {
            for &b in &ids {
                if let Some(l) = o.lca(a, b) {
                    prop_assert!(o.is_subconcept_of(a, l));
                    prop_assert!(o.is_subconcept_of(b, l));
                    for &c in &ids {
                        if o.is_subconcept_of(a, c) && o.is_subconcept_of(b, c) {
                            prop_assert!(o.depth(c) <= o.depth(l));
                        }
                    }
                }
            }
        }
    }

    /// Wu–Palmer similarity is symmetric, bounded and maximal on self.
    #[test]
    fn wu_palmer_is_well_behaved(spec in arb_taxonomy()) {
        let (o, ids) = build(&spec);
        let sim = Similarity::new(&o);
        for &a in &ids {
            prop_assert_eq!(sim.wu_palmer(a, a), 1.0);
            for &b in &ids {
                let s = sim.wu_palmer(a, b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert_eq!(s, sim.wu_palmer(b, a));
            }
        }
    }

    /// Declared aliases behave exactly like their base concept.
    #[test]
    fn aliases_are_transparent(spec in arb_taxonomy()) {
        let (o, ids) = build(&spec);
        for (k, &base) in spec.aliases.iter().enumerate() {
            let alias = o
                .concept(&qasom_ontology::Iri::new("alias", format!("A{k}")))
                .expect("alias declared");
            prop_assert!(o.same_concept(alias, ids[base]));
            for &c in &ids {
                prop_assert_eq!(
                    o.is_subconcept_of(alias, c),
                    o.is_subconcept_of(ids[base], c)
                );
                prop_assert_eq!(o.match_degree(alias, c), o.match_degree(ids[base], c));
            }
        }
    }
}
