//! Chaos testing: randomised environments with churn, drift, transient
//! failures and crashes. The invariant under test is *graceful* handling:
//! the middleware either completes the task, reports a structured
//! composition error, or abandons with a structured execution error —
//! never panics, and every success report is internally consistent.

use proptest::prelude::*;
use qasom::{Environment, EventLog, ExecutionError, MiddlewareEvent, UserRequest};
use qasom_netsim::runtime::SyntheticService;
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, QosVector, Unit};
use qasom_registry::ServiceDescription;
use qasom_task::{Activity, TaskClass, TaskNode, UserTask};

#[derive(Debug, Clone)]
struct ServiceSpec {
    function: usize,
    rt_ms: f64,
    noise: f64,
    failure_rate: f64,
    crash_after: Option<u64>,
}

fn arb_service() -> impl Strategy<Value = ServiceSpec> {
    (
        0usize..3,
        10.0f64..400.0,
        0.0f64..0.2,
        0.0f64..0.4,
        prop_oneof![Just(None), (0u64..4).prop_map(Some)],
    )
        .prop_map(
            |(function, rt_ms, noise, failure_rate, crash_after)| ServiceSpec {
                function,
                rt_ms,
                noise,
                failure_rate,
                crash_after,
            },
        )
}

fn build_env(services: &[ServiceSpec], seed: u64) -> (Environment, EventLog) {
    let mut b = OntologyBuilder::new("c");
    for f in 0..3 {
        b.concept(&format!("F{f}"));
    }
    let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), seed);
    let log = EventLog::new();
    env.subscribe(std::sync::Arc::new(log.clone()));
    let rt = env.model().property("ResponseTime").unwrap();
    let av = env.model().property("Availability").unwrap();
    for (i, s) in services.iter().enumerate() {
        let desc = ServiceDescription::new(format!("s{i}"), &format!("c#F{}", s.function))
            .with_qos(rt, s.rt_ms)
            .with_qos(av, 0.95);
        let nominal = desc.qos().clone();
        let mut synthetic = SyntheticService::new(nominal)
            .with_noise(s.noise)
            .with_failure_rate(s.failure_rate);
        if let Some(n) = s.crash_after {
            synthetic = synthetic.with_crash_after(n);
        }
        env.deploy(desc, synthetic);
    }
    (env, log)
}

fn three_step_task() -> UserTask {
    UserTask::new(
        "chaos",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("a", "c#F0")),
            TaskNode::activity(Activity::new("b", "c#F1")),
            TaskNode::activity(Activity::new("c", "c#F2")),
        ]),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn middleware_never_panics_under_chaos(
        services in prop::collection::vec(arb_service(), 1..12),
        seed in any::<u64>(),
    ) {
        let (mut env, log) = build_env(&services, seed);

        // A fallback behaviour that only needs F0 — behavioural
        // adaptation has somewhere to go when F1/F2 are unservable.
        let v2 = UserTask::new(
            "chaos-lite",
            TaskNode::activity(Activity::new("a2", "c#F0")),
        )
        .unwrap();
        let mut class = TaskClass::new("chaos-class");
        class.add_behaviour(three_step_task());
        class.add_behaviour(v2);
        env.register_task_class(class);

        let request = UserRequest::new(three_step_task())
            .constraint("Delay", 30.0, Unit::Seconds)
            .unwrap();

        match env.compose(&request) {
            Err(_) => {} // some function had no provider: structured error
            Ok(comp) => match env.execute(comp) {
                Ok(report) => {
                    prop_assert!(report.success);
                    // Every successful invocation carries QoS; failures
                    // don't.
                    for r in &report.invocations {
                        if let Some(q) = &r.qos {
                            prop_assert!(!q.is_empty());
                        }
                    }
                    // The event trace ends with a completion.
                    let completed = matches!(
                        log.events().last(),
                        Some(MiddlewareEvent::Completed { .. })
                    );
                    prop_assert!(completed, "trace must end with Completed");
                }
                Err(ExecutionError::Abandoned { .. }) => {} // acceptable under chaos
                Err(ExecutionError::Recompose(_)) => {}     // churn during adaptation
            },
        }
    }

    #[test]
    fn monitor_state_stays_consistent_under_chaos(
        services in prop::collection::vec(arb_service(), 3..10),
        seed in any::<u64>(),
    ) {
        let (mut env, _log) = build_env(&services, seed);
        let request = UserRequest::new(three_step_task());
        if let Ok(comp) = env.compose(&request) {
            let _ = env.execute(comp);
        }
        // Whatever happened, monitor estimates remain well-formed.
        let rt = env.model().property("ResponseTime").unwrap();
        for (id, _) in env.registry().iter() {
            if let Some(est) = env.monitor().estimate(id) {
                if let Some(v) = est.get(rt) {
                    prop_assert!(v.is_finite() && v >= 0.0, "estimate {v}");
                }
            }
        }
        let _ = QosVector::new();
    }
}
